//! The SQL subset's abstract syntax, span-annotated.
//!
//! Every node keeps the span of the text it was parsed from, so the
//! binder can report semantic errors (unknown table, type mismatch)
//! pointing at the exact offending characters. [`Statement::describe`]
//! renders a stable indented tree used by the golden parser tests.

use crate::error::Span;

/// An identifier with its source span (stored lowercased — the subset
/// is case-insensitive, like unquoted SQL identifiers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ident {
    /// Lowercased identifier text.
    pub name: String,
    /// Where it appeared.
    pub span: Span,
}

/// A possibly-qualified column reference, e.g. `key` or `t.key`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// Optional table qualifier.
    pub qualifier: Option<Ident>,
    /// Column name.
    pub name: Ident,
}

impl Column {
    /// `qualifier.name` or `name`.
    pub fn describe(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{}.{}", q.name, self.name.name),
            None => self.name.name.clone(),
        }
    }

    /// The span covering the whole reference.
    pub fn span(&self) -> Span {
        match &self.qualifier {
            Some(q) => q.span.to(self.name.span),
            None => self.name.span,
        }
    }
}

/// A key predicate in a `WHERE` clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WherePred {
    /// The column the predicate constrains (must bind to a key).
    pub column: Column,
    /// Predicate form.
    pub form: PredForm,
    /// Span of the whole predicate.
    pub span: Span,
}

/// Supported predicate shapes (mirroring `planner::Predicate`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredForm {
    /// `col < bound`
    Below(u64),
    /// `col >= bound`
    AtLeast(u64),
    /// `col % modulus = residue`
    ModEq {
        /// Modulus of the congruence.
        modulus: u64,
        /// Expected residue.
        residue: u64,
    },
}

impl PredForm {
    fn describe(&self) -> String {
        match self {
            PredForm::Below(b) => format!("< {b}"),
            PredForm::AtLeast(b) => format!(">= {b}"),
            PredForm::ModEq { modulus, residue } => format!("% {modulus} = {residue}"),
        }
    }
}

/// An `[INNER] JOIN table [AS alias] ON left = right` clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Join {
    /// Joined table.
    pub table: Ident,
    /// Optional alias (`AS u`) the query refers to this occurrence by —
    /// required to disambiguate self-joins.
    pub alias: Option<Ident>,
    /// Left side of the `ON` equality.
    pub left: Column,
    /// Right side of the `ON` equality.
    pub right: Column,
    /// Span of the `ON` condition.
    pub span: Span,
}

impl Join {
    /// The name this occurrence binds under: the alias, or the table.
    pub fn binding(&self) -> &Ident {
        self.alias.as_ref().unwrap_or(&self.table)
    }
}

/// One item of the projection list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// A named column.
    Column(Column),
}

/// A `SELECT` statement of the subset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Select {
    /// Projection list (contains [`SelectItem::Star`] for `*`).
    pub projection: Vec<SelectItem>,
    /// Base table of the `FROM` clause.
    pub from: Ident,
    /// Optional alias (`AS x`) for the `FROM` table.
    pub from_alias: Option<Ident>,
    /// Join clauses, in syntactic order (zero or more).
    pub joins: Vec<Join>,
    /// `WHERE` predicates (implicitly conjoined).
    pub predicates: Vec<WherePred>,
    /// `GROUP BY` column, when present.
    pub group_by: Option<Column>,
    /// `ORDER BY` column, when present.
    pub order_by: Option<Column>,
    /// `LIMIT` row cap, when present.
    pub limit: Option<u64>,
}

/// A parsed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name AS WISCONSIN(rows[, fanout[, seed[, skew]]])`
    Create {
        /// New table name.
        table: Ident,
        /// Distinct keys (left-side rows).
        rows: u64,
        /// Records per key (total rows = rows × fanout).
        fanout: u64,
        /// Permutation seed.
        seed: u64,
        /// Zipf exponent of the key draw; `0` (the default) keeps the
        /// classic uniform generator.
        skew: f64,
    },
    /// `INSERT INTO name VALUES (k1)[, (k2)…]` — one key per tuple; the
    /// remaining nine Wisconsin attributes derive from the key.
    Insert {
        /// Target table.
        table: Ident,
        /// Keys, in statement order.
        keys: Vec<u64>,
    },
    /// `DROP TABLE name`
    Drop {
        /// Table to drop.
        table: Ident,
    },
    /// `CHECKPOINT` — materialize the catalog and reset the WAL
    /// (durable databases only).
    Checkpoint,
    /// `SHOW TABLES`
    ShowTables,
    /// `SHOW METRICS` — the database-wide counter registry.
    ShowMetrics,
    /// `SET knob = value`
    Set {
        /// Knob name (`threads`, `batch`, `lambda`, `memory`,
        /// `timing`, `profile`).
        name: Ident,
        /// New value.
        value: SetValue,
        /// Span of the value literal (for range diagnostics).
        value_span: Span,
    },
    /// A query.
    Select(Select),
    /// `EXPLAIN SELECT …` — plan, run, and report concordance instead of
    /// returning rows.
    Explain(Select),
    /// `EXPLAIN ANALYZE SELECT …` — run the query and render the plan
    /// annotated with per-node measured traffic, rows, and timings.
    ExplainAnalyze(Select),
}

/// The right-hand side of a `SET` statement: numeric knobs take an
/// integer, boolean knobs take `on`/`off`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetValue {
    /// An integer literal.
    Num(u64),
    /// `on` or `off`.
    Flag(bool),
}

impl SetValue {
    /// Stable rendering: the number, or `on`/`off`.
    pub fn describe(&self) -> String {
        match self {
            SetValue::Num(n) => n.to_string(),
            SetValue::Flag(true) => "on".into(),
            SetValue::Flag(false) => "off".into(),
        }
    }
}

impl Statement {
    /// Stable indented tree rendering (golden-test surface).
    pub fn describe(&self) -> String {
        match self {
            Statement::Create {
                table,
                rows,
                fanout,
                seed,
                skew,
            } => {
                let skew = if *skew > 0.0 {
                    format!(", skew={skew}")
                } else {
                    String::new()
                };
                format!(
                    "create {} as wisconsin(rows={rows}, fanout={fanout}, seed={seed}{skew})\n",
                    table.name
                )
            }
            Statement::Insert { table, keys } => {
                let keys: Vec<String> = keys.iter().map(u64::to_string).collect();
                format!("insert {} keys [{}]\n", table.name, keys.join(", "))
            }
            Statement::Drop { table } => format!("drop {}\n", table.name),
            Statement::Checkpoint => "checkpoint\n".into(),
            Statement::ShowTables => "show tables\n".into(),
            Statement::ShowMetrics => "show metrics\n".into(),
            Statement::Set { name, value, .. } => {
                format!("set {} = {}\n", name.name, value.describe())
            }
            Statement::Select(s) => s.describe("select"),
            Statement::Explain(s) => s.describe("explain select"),
            Statement::ExplainAnalyze(s) => s.describe("explain analyze select"),
        }
    }
}

impl Select {
    fn describe(&self, head: &str) -> String {
        let mut out = format!("{head}\n");
        let proj: Vec<String> = self
            .projection
            .iter()
            .map(|p| match p {
                SelectItem::Star => "*".into(),
                SelectItem::Column(c) => c.describe(),
            })
            .collect();
        out.push_str(&format!("  project {}\n", proj.join(", ")));
        match &self.from_alias {
            Some(a) => out.push_str(&format!("  from {} as {}\n", self.from.name, a.name)),
            None => out.push_str(&format!("  from {}\n", self.from.name)),
        }
        for j in &self.joins {
            let alias = j
                .alias
                .as_ref()
                .map(|a| format!(" as {}", a.name))
                .unwrap_or_default();
            out.push_str(&format!(
                "  join {}{alias} on {} = {}\n",
                j.table.name,
                j.left.describe(),
                j.right.describe()
            ));
        }
        for p in &self.predicates {
            out.push_str(&format!(
                "  where {} {}\n",
                p.column.describe(),
                p.form.describe()
            ));
        }
        if let Some(g) = &self.group_by {
            out.push_str(&format!("  group by {}\n", g.describe()));
        }
        if let Some(o) = &self.order_by {
            out.push_str(&format!("  order by {}\n", o.describe()));
        }
        if let Some(l) = self.limit {
            out.push_str(&format!("  limit {l}\n"));
        }
        out
    }
}
