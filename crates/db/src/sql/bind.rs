//! The binder: a parsed [`Select`] plus a catalog become a
//! [`planner::LogicalPlan`] with a resolved output schema.
//!
//! Binding is where span-carrying *semantic* errors surface: unknown
//! tables, unknown or ambiguous columns, predicates over non-key
//! attributes, and malformed join conditions all point back at the
//! offending SQL text.

use super::ast::{Column, PredForm, Select, SelectItem};
use crate::error::SqlError;
use planner::{Catalog, LogicalPlan, Predicate, MAX_JOIN_RELATIONS};

/// The shape of the rows a bound query produces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RowShape {
    /// Base Wisconsin records (`key`, `payload`).
    Base,
    /// Joined pairs (`key`, `<left>.payload`, `<right>.payload`).
    Pairs {
        /// Logical left (FROM) binding name.
        left: String,
        /// Logical right (JOIN) binding name.
        right: String,
    },
    /// n-way joined rows (`key`, one `<binding>.payload` per relation in
    /// join order).
    Joined {
        /// Binding names of every joined relation, in syntactic order.
        tables: Vec<String>,
    },
    /// Aggregation groups (`key`, `count`, `sum`, `min`, `max`).
    Groups,
}

impl RowShape {
    /// The full column list of this shape, before projection.
    pub fn columns(&self) -> Vec<String> {
        match self {
            RowShape::Base => vec!["key".into(), "payload".into()],
            RowShape::Pairs { left, right } => vec![
                "key".into(),
                format!("{left}.payload"),
                format!("{right}.payload"),
            ],
            RowShape::Joined { tables } => std::iter::once("key".to_string())
                .chain(tables.iter().map(|t| format!("{t}.payload")))
                .collect(),
            RowShape::Groups => vec![
                "key".into(),
                "count".into(),
                "sum".into(),
                "min".into(),
                "max".into(),
            ],
        }
    }
}

/// A bound query: the logical plan plus everything needed to deliver
/// and label its rows.
#[derive(Clone, Debug)]
pub struct BoundQuery {
    /// The logical plan handed to the planner.
    pub logical: LogicalPlan,
    /// Row shape of the plan's output.
    pub shape: RowShape,
    /// Projected column indices into [`RowShape::columns`].
    pub projection: Vec<usize>,
    /// `LIMIT` row cap, when present.
    pub limit: Option<u64>,
}

impl BoundQuery {
    /// The projected column names, in output order.
    pub fn column_names(&self) -> Vec<String> {
        let all = self.shape.columns();
        self.projection.iter().map(|&i| all[i].clone()).collect()
    }
}

/// Binds `select` against `catalog`.
///
/// # Errors
/// Returns a span-carrying [`SqlError`] for unknown tables/columns,
/// non-key predicates, malformed join conditions, or ambiguous
/// references.
pub fn bind(select: &Select, catalog: &Catalog) -> Result<BoundQuery, SqlError> {
    // Resolve the relation list first — FROM plus every JOIN — so every
    // later message can trust the binding namespace. Each occurrence
    // binds under its alias (or table name); duplicates are rejected so
    // self-joins must alias.
    struct Rel {
        binding: String,
        table: String,
    }
    let mut rels: Vec<Rel> = Vec::new();
    {
        let add = |table: &super::ast::Ident,
                   alias: Option<&super::ast::Ident>,
                   rels: &mut Vec<Rel>|
         -> Result<(), SqlError> {
            if catalog.stats(&table.name).is_none() {
                return Err(SqlError::new(
                    format!("unknown table \"{}\"", table.name),
                    table.span,
                ));
            }
            let bound = alias.unwrap_or(table);
            if rels.iter().any(|r| r.binding == bound.name) {
                let hint = if alias.is_none() {
                    " (alias the second occurrence, e.g. JOIN ... AS u)"
                } else {
                    ""
                };
                return Err(SqlError::new(
                    format!("duplicate table name \"{}\" in FROM{hint}", bound.name),
                    bound.span,
                ));
            }
            rels.push(Rel {
                binding: bound.name.clone(),
                table: table.name.clone(),
            });
            Ok(())
        };
        add(&select.from, select.from_alias.as_ref(), &mut rels)?;
        for j in &select.joins {
            add(&j.table, j.alias.as_ref(), &mut rels)?;
        }
    }
    let n = rels.len();
    if n > MAX_JOIN_RELATIONS {
        return Err(SqlError::new(
            format!("query joins {n} relations; at most {MAX_JOIN_RELATIONS} are supported"),
            select.joins[MAX_JOIN_RELATIONS - 1].table.span,
        ));
    }
    let rel_index = |name: &str| rels.iter().position(|r| r.binding == name);

    // Validate each join condition: key = key, both sides qualified, one
    // qualifier naming the newly joined relation and the other one
    // already in scope — so every join connects to the tree built so far.
    for (i, j) in select.joins.iter().enumerate() {
        let new_binding = &j.binding().name;
        for side in [&j.left, &j.right] {
            if side.name.name != "key" {
                return Err(SqlError::new(
                    format!(
                        "type mismatch: joins are equi-joins on key, not \"{}\"",
                        side.name.name
                    ),
                    side.name.span,
                ));
            }
        }
        let q = |c: &Column| -> Result<String, SqlError> {
            match &c.qualifier {
                Some(q) => Ok(q.name.clone()),
                None => Err(SqlError::new(
                    "join condition must qualify both sides (e.g. t.key = v.key)",
                    c.span(),
                )),
            }
        };
        let (lq, rq) = (q(&j.left)?, q(&j.right)?);
        for (name, col) in [(&lq, &j.left), (&rq, &j.right)] {
            let Some(idx) = rel_index(name) else {
                return Err(SqlError::new(
                    format!(
                        "unknown table reference \"{name}\" in join condition (in scope: {})",
                        rels[..=i + 1]
                            .iter()
                            .map(|r| r.binding.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                    col.span(),
                ));
            };
            if idx > i + 1 {
                return Err(SqlError::new(
                    format!("table \"{name}\" is joined later and not yet in scope here"),
                    col.span(),
                ));
            }
        }
        if lq == rq {
            return Err(SqlError::new(
                "join condition must relate two different tables",
                j.span,
            ));
        }
        if lq != *new_binding && rq != *new_binding {
            return Err(SqlError::new(
                format!(
                    "join condition must involve the joined table \"{new_binding}\", \
                     got \"{lq}\" and \"{rq}\""
                ),
                j.span,
            ));
        }
    }

    // Split WHERE predicates onto the relation scans they qualify; with
    // joins, unqualified predicates apply to the join output (all sides
    // share the join key, so `key` is unambiguous there).
    let mut rel_preds: Vec<Vec<Predicate>> = (0..n).map(|_| Vec::new()).collect();
    let mut post_preds = Vec::new();
    for p in &select.predicates {
        if p.column.name.name != "key" {
            return Err(SqlError::new(
                format!(
                    "predicates are supported on key only, not \"{}\"",
                    p.column.name.name
                ),
                p.column.name.span,
            ));
        }
        let predicate = match p.form {
            PredForm::Below(b) => Predicate::KeyBelow(b),
            PredForm::AtLeast(b) => Predicate::KeyAtLeast(b),
            PredForm::ModEq { modulus, residue } => Predicate::KeyModEq { modulus, residue },
        };
        match &p.column.qualifier {
            None => {
                if n > 1 {
                    post_preds.push(predicate);
                } else {
                    rel_preds[0].push(predicate);
                }
            }
            Some(q) => match rel_index(&q.name) {
                Some(idx) => rel_preds[idx].push(predicate),
                None => {
                    return Err(SqlError::new(
                        format!("unknown table reference \"{}\" in predicate", q.name),
                        q.span,
                    ));
                }
            },
        }
    }

    // Assemble the logical plan: scans + pushed filters joined left-deep
    // in syntactic order (the planner's DP re-orders ≥ 3-way joins),
    // then post-join filters, aggregate, sort.
    let leaf = |i: usize| {
        let mut l = LogicalPlan::scan(&rels[i].table);
        for p in &rel_preds[i] {
            l = l.filter(*p);
        }
        l
    };
    let mut plan = leaf(0);
    for i in 1..n {
        plan = plan.join(leaf(i));
    }
    for p in &post_preds {
        plan = plan.filter(*p);
    }

    let known_table = |name: &str| rel_index(name).is_some();

    if let Some(g) = &select.group_by {
        check_key_column(g, "GROUP BY", &known_table)?;
        plan = plan.aggregate();
    }
    if let Some(o) = &select.order_by {
        check_key_column(o, "ORDER BY", &known_table)?;
        plan = plan.sort();
    }

    let shape = if select.group_by.is_some() {
        RowShape::Groups
    } else if n >= 3 {
        RowShape::Joined {
            tables: rels.iter().map(|r| r.binding.clone()).collect(),
        }
    } else if n == 2 {
        RowShape::Pairs {
            left: rels[0].binding.clone(),
            right: rels[1].binding.clone(),
        }
    } else {
        RowShape::Base
    };

    let projection = resolve_projection(&select.projection, &shape, &known_table)?;

    Ok(BoundQuery {
        logical: plan,
        shape,
        projection,
        limit: select.limit,
    })
}

fn check_key_column(
    c: &Column,
    clause: &str,
    known_table: &impl Fn(&str) -> bool,
) -> Result<(), SqlError> {
    if let Some(q) = &c.qualifier {
        if !known_table(&q.name) {
            return Err(SqlError::new(
                format!("unknown table reference \"{}\" in {clause}", q.name),
                q.span,
            ));
        }
    }
    if c.name.name != "key" {
        return Err(SqlError::new(
            format!("{clause} is supported on key only, not \"{}\"", c.name.name),
            c.name.span,
        ));
    }
    Ok(())
}

fn resolve_projection(
    items: &[SelectItem],
    shape: &RowShape,
    known_table: &impl Fn(&str) -> bool,
) -> Result<Vec<usize>, SqlError> {
    let all = shape.columns();
    let mut out = Vec::new();
    for item in items {
        match item {
            SelectItem::Star => out.extend(0..all.len()),
            SelectItem::Column(c) => out.push(resolve_column(c, shape, known_table)?),
        }
    }
    Ok(out)
}

fn resolve_column(
    c: &Column,
    shape: &RowShape,
    known_table: &impl Fn(&str) -> bool,
) -> Result<usize, SqlError> {
    if let Some(q) = &c.qualifier {
        if !known_table(&q.name) {
            return Err(SqlError::new(
                format!("unknown table reference \"{}\"", q.name),
                q.span,
            ));
        }
    }
    let name = c.name.name.as_str();
    match shape {
        RowShape::Base => match name {
            "key" => Ok(0),
            "payload" => Ok(1),
            _ => Err(unknown_column(c, shape)),
        },
        RowShape::Pairs { left, right } => match (name, c.qualifier.as_ref()) {
            ("key", _) => Ok(0),
            ("payload", Some(q)) if q.name == *left => Ok(1),
            ("payload", Some(q)) if q.name == *right => Ok(2),
            ("payload", None) => Err(SqlError::new(
                format!(
                    "ambiguous column \"payload\": qualify as {left}.payload or {right}.payload"
                ),
                c.name.span,
            )),
            _ => Err(unknown_column(c, shape)),
        },
        RowShape::Joined { tables } => match (name, c.qualifier.as_ref()) {
            ("key", _) => Ok(0),
            ("payload", Some(q)) => match tables.iter().position(|t| *t == q.name) {
                Some(i) => Ok(1 + i),
                None => Err(unknown_column(c, shape)),
            },
            ("payload", None) => Err(SqlError::new(
                format!(
                    "ambiguous column \"payload\": qualify as one of {}",
                    tables
                        .iter()
                        .map(|t| format!("{t}.payload"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                c.name.span,
            )),
            _ => Err(unknown_column(c, shape)),
        },
        RowShape::Groups => match name {
            "key" => Ok(0),
            "count" => Ok(1),
            "sum" => Ok(2),
            "min" => Ok(3),
            "max" => Ok(4),
            _ => Err(unknown_column(c, shape)),
        },
    }
}

fn unknown_column(c: &Column, shape: &RowShape) -> SqlError {
    SqlError::new(
        format!(
            "unknown column \"{}\" (available: {})",
            c.describe(),
            shape.columns().join(", ")
        ),
        c.span(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse;
    use crate::sql::Statement;
    use planner::TableStats;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_stats("t", TableStats::wisconsin(1_000));
        c.add_stats("v", TableStats::wisconsin(4_000));
        c
    }

    fn bind_sql(sql: &str) -> Result<BoundQuery, SqlError> {
        let Statement::Select(s) = parse(sql).expect("parses") else {
            panic!("expected select");
        };
        bind(&s, &catalog())
    }

    #[test]
    fn binds_the_canonical_join_query() {
        let b = bind_sql(
            "SELECT * FROM t JOIN v ON t.key = v.key WHERE t.key < 500 GROUP BY key ORDER BY key",
        )
        .expect("binds");
        assert_eq!(
            b.logical.describe(),
            "sort\n  aggregate\n    join\n      filter [key < 500]\n        scan t\n      scan v\n"
        );
        assert_eq!(b.shape, RowShape::Groups);
        assert_eq!(b.column_names(), vec!["key", "count", "sum", "min", "max"]);
    }

    #[test]
    fn qualified_predicates_push_to_their_side() {
        let b =
            bind_sql("SELECT * FROM t JOIN v ON v.key = t.key WHERE v.key % 2 = 0").expect("binds");
        assert_eq!(
            b.logical.describe(),
            "join\n  scan t\n  filter [key % 2 == 0]\n    scan v\n"
        );
        let RowShape::Pairs { left, right } = &b.shape else {
            panic!("expected pairs");
        };
        assert_eq!((left.as_str(), right.as_str()), ("t", "v"));
    }

    #[test]
    fn unqualified_join_predicates_apply_after_the_join() {
        let b = bind_sql("SELECT * FROM t JOIN v ON t.key = v.key WHERE key < 10").expect("binds");
        assert_eq!(
            b.logical.describe(),
            "filter [key < 10]\n  join\n    scan t\n    scan v\n"
        );
    }

    #[test]
    fn unknown_table_errors_carry_the_span() {
        let sql = "SELECT * FROM nosuch";
        let err = bind_sql(sql).unwrap_err();
        assert_eq!(err.message, "unknown table \"nosuch\"");
        assert_eq!(&sql[err.span.start..err.span.end], "nosuch");
    }

    #[test]
    fn non_key_predicates_are_rejected() {
        let err = bind_sql("SELECT * FROM t WHERE payload < 5").unwrap_err();
        assert!(err.message.contains("key only"), "{}", err.message);
    }

    #[test]
    fn projection_resolution_and_ambiguity() {
        let b = bind_sql("SELECT key, v.payload FROM t JOIN v ON t.key = v.key").expect("binds");
        assert_eq!(b.projection, vec![0, 2]);
        assert_eq!(b.column_names(), vec!["key", "v.payload"]);
        let err = bind_sql("SELECT payload FROM t JOIN v ON t.key = v.key").unwrap_err();
        assert!(err.message.contains("ambiguous"), "{}", err.message);
        let err = bind_sql("SELECT nope FROM t").unwrap_err();
        assert!(err.message.contains("unknown column"), "{}", err.message);
    }

    #[test]
    fn join_condition_shape_is_enforced() {
        let err = bind_sql("SELECT * FROM t JOIN v ON t.payload = v.key").unwrap_err();
        assert!(err.message.contains("equi-joins on key"), "{}", err.message);
        let err = bind_sql("SELECT * FROM t JOIN v ON key = key").unwrap_err();
        assert!(
            err.message.contains("qualify both sides"),
            "{}",
            err.message
        );
        let err = bind_sql("SELECT * FROM t JOIN v ON t.key = t.key").unwrap_err();
        assert!(err.message.contains("must relate"), "{}", err.message);
    }
}
