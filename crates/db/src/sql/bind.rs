//! The binder: a parsed [`Select`] plus a catalog become a
//! [`planner::LogicalPlan`] with a resolved output schema.
//!
//! Binding is where span-carrying *semantic* errors surface: unknown
//! tables, unknown or ambiguous columns, predicates over non-key
//! attributes, and malformed join conditions all point back at the
//! offending SQL text.

use super::ast::{Column, PredForm, Select, SelectItem};
use crate::error::SqlError;
use planner::{Catalog, LogicalPlan, Predicate};

/// The shape of the rows a bound query produces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RowShape {
    /// Base Wisconsin records (`key`, `payload`).
    Base,
    /// Joined pairs (`key`, `<left>.payload`, `<right>.payload`).
    Pairs {
        /// Logical left (FROM) table name.
        left: String,
        /// Logical right (JOIN) table name.
        right: String,
    },
    /// Aggregation groups (`key`, `count`, `sum`, `min`, `max`).
    Groups,
}

impl RowShape {
    /// The full column list of this shape, before projection.
    pub fn columns(&self) -> Vec<String> {
        match self {
            RowShape::Base => vec!["key".into(), "payload".into()],
            RowShape::Pairs { left, right } => vec![
                "key".into(),
                format!("{left}.payload"),
                format!("{right}.payload"),
            ],
            RowShape::Groups => vec![
                "key".into(),
                "count".into(),
                "sum".into(),
                "min".into(),
                "max".into(),
            ],
        }
    }
}

/// A bound query: the logical plan plus everything needed to deliver
/// and label its rows.
#[derive(Clone, Debug)]
pub struct BoundQuery {
    /// The logical plan handed to the planner.
    pub logical: LogicalPlan,
    /// Row shape of the plan's output.
    pub shape: RowShape,
    /// Projected column indices into [`RowShape::columns`].
    pub projection: Vec<usize>,
    /// `LIMIT` row cap, when present.
    pub limit: Option<u64>,
}

impl BoundQuery {
    /// The projected column names, in output order.
    pub fn column_names(&self) -> Vec<String> {
        let all = self.shape.columns();
        self.projection.iter().map(|&i| all[i].clone()).collect()
    }
}

/// Binds `select` against `catalog`.
///
/// # Errors
/// Returns a span-carrying [`SqlError`] for unknown tables/columns,
/// non-key predicates, malformed join conditions, or ambiguous
/// references.
pub fn bind(select: &Select, catalog: &Catalog) -> Result<BoundQuery, SqlError> {
    // Resolve tables first so every later message can trust them.
    let from = &select.from;
    if catalog.stats(&from.name).is_none() {
        return Err(SqlError::new(
            format!("unknown table \"{}\"", from.name),
            from.span,
        ));
    }
    let join_table = match &select.join {
        Some(j) => {
            if catalog.stats(&j.table.name).is_none() {
                return Err(SqlError::new(
                    format!("unknown table \"{}\"", j.table.name),
                    j.table.span,
                ));
            }
            if j.table.name == from.name {
                return Err(SqlError::new(
                    format!("self-join of \"{}\" is not supported", j.table.name),
                    j.table.span,
                ));
            }
            Some(j.table.name.clone())
        }
        None => None,
    };

    // Validate the join condition: key = key, qualifiers covering both
    // tables in either order.
    if let Some(j) = &select.join {
        for side in [&j.left, &j.right] {
            if side.name.name != "key" {
                return Err(SqlError::new(
                    format!(
                        "type mismatch: joins are equi-joins on key, not \"{}\"",
                        side.name.name
                    ),
                    side.name.span,
                ));
            }
        }
        let q = |c: &Column| -> Result<String, SqlError> {
            match &c.qualifier {
                Some(q) => Ok(q.name.clone()),
                None => Err(SqlError::new(
                    "join condition must qualify both sides (e.g. t.key = v.key)",
                    c.span(),
                )),
            }
        };
        let (lq, rq) = (q(&j.left)?, q(&j.right)?);
        let joined = join_table.clone().expect("join table resolved");
        let covers = (lq == from.name && rq == joined) || (lq == joined && rq == from.name);
        if !covers {
            return Err(SqlError::new(
                format!(
                    "join condition must relate \"{}\" and \"{joined}\", got \"{lq}\" and \"{rq}\"",
                    from.name
                ),
                j.span,
            ));
        }
    }

    // Split WHERE predicates onto the table scans they qualify; with a
    // join, unqualified predicates apply to the join output (both sides
    // share the join key, so `key` is unambiguous there).
    let mut from_preds = Vec::new();
    let mut join_preds = Vec::new();
    let mut post_preds = Vec::new();
    for p in &select.predicates {
        if p.column.name.name != "key" {
            return Err(SqlError::new(
                format!(
                    "predicates are supported on key only, not \"{}\"",
                    p.column.name.name
                ),
                p.column.name.span,
            ));
        }
        let predicate = match p.form {
            PredForm::Below(b) => Predicate::KeyBelow(b),
            PredForm::AtLeast(b) => Predicate::KeyAtLeast(b),
            PredForm::ModEq { modulus, residue } => Predicate::KeyModEq { modulus, residue },
        };
        match &p.column.qualifier {
            None => {
                if join_table.is_some() {
                    post_preds.push(predicate);
                } else {
                    from_preds.push(predicate);
                }
            }
            Some(q) if q.name == from.name => from_preds.push(predicate),
            Some(q) if Some(&q.name) == join_table.as_ref() => join_preds.push(predicate),
            Some(q) => {
                return Err(SqlError::new(
                    format!("unknown table reference \"{}\" in predicate", q.name),
                    q.span,
                ));
            }
        }
    }

    // Assemble the logical plan: scans + pushed filters, join, post-join
    // filters, aggregate, sort.
    let mut plan = LogicalPlan::scan(&from.name);
    for p in &from_preds {
        plan = plan.filter(*p);
    }
    if let Some(joined) = &join_table {
        let mut right = LogicalPlan::scan(joined);
        for p in &join_preds {
            right = right.filter(*p);
        }
        plan = plan.join(right);
        for p in &post_preds {
            plan = plan.filter(*p);
        }
    }

    let known_table = |name: &str| name == from.name || Some(name) == join_table.as_deref();

    if let Some(g) = &select.group_by {
        check_key_column(g, "GROUP BY", &known_table)?;
        plan = plan.aggregate();
    }
    if let Some(o) = &select.order_by {
        check_key_column(o, "ORDER BY", &known_table)?;
        plan = plan.sort();
    }

    let shape = if select.group_by.is_some() {
        RowShape::Groups
    } else if let Some(joined) = &join_table {
        RowShape::Pairs {
            left: from.name.clone(),
            right: joined.clone(),
        }
    } else {
        RowShape::Base
    };

    let projection = resolve_projection(&select.projection, &shape, &known_table)?;

    Ok(BoundQuery {
        logical: plan,
        shape,
        projection,
        limit: select.limit,
    })
}

fn check_key_column(
    c: &Column,
    clause: &str,
    known_table: &impl Fn(&str) -> bool,
) -> Result<(), SqlError> {
    if let Some(q) = &c.qualifier {
        if !known_table(&q.name) {
            return Err(SqlError::new(
                format!("unknown table reference \"{}\" in {clause}", q.name),
                q.span,
            ));
        }
    }
    if c.name.name != "key" {
        return Err(SqlError::new(
            format!("{clause} is supported on key only, not \"{}\"", c.name.name),
            c.name.span,
        ));
    }
    Ok(())
}

fn resolve_projection(
    items: &[SelectItem],
    shape: &RowShape,
    known_table: &impl Fn(&str) -> bool,
) -> Result<Vec<usize>, SqlError> {
    let all = shape.columns();
    let mut out = Vec::new();
    for item in items {
        match item {
            SelectItem::Star => out.extend(0..all.len()),
            SelectItem::Column(c) => out.push(resolve_column(c, shape, known_table)?),
        }
    }
    Ok(out)
}

fn resolve_column(
    c: &Column,
    shape: &RowShape,
    known_table: &impl Fn(&str) -> bool,
) -> Result<usize, SqlError> {
    if let Some(q) = &c.qualifier {
        if !known_table(&q.name) {
            return Err(SqlError::new(
                format!("unknown table reference \"{}\"", q.name),
                q.span,
            ));
        }
    }
    let name = c.name.name.as_str();
    match shape {
        RowShape::Base => match name {
            "key" => Ok(0),
            "payload" => Ok(1),
            _ => Err(unknown_column(c, shape)),
        },
        RowShape::Pairs { left, right } => match (name, c.qualifier.as_ref()) {
            ("key", _) => Ok(0),
            ("payload", Some(q)) if q.name == *left => Ok(1),
            ("payload", Some(q)) if q.name == *right => Ok(2),
            ("payload", None) => Err(SqlError::new(
                format!(
                    "ambiguous column \"payload\": qualify as {left}.payload or {right}.payload"
                ),
                c.name.span,
            )),
            _ => Err(unknown_column(c, shape)),
        },
        RowShape::Groups => match name {
            "key" => Ok(0),
            "count" => Ok(1),
            "sum" => Ok(2),
            "min" => Ok(3),
            "max" => Ok(4),
            _ => Err(unknown_column(c, shape)),
        },
    }
}

fn unknown_column(c: &Column, shape: &RowShape) -> SqlError {
    SqlError::new(
        format!(
            "unknown column \"{}\" (available: {})",
            c.describe(),
            shape.columns().join(", ")
        ),
        c.span(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse;
    use crate::sql::Statement;
    use planner::TableStats;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_stats("t", TableStats::wisconsin(1_000));
        c.add_stats("v", TableStats::wisconsin(4_000));
        c
    }

    fn bind_sql(sql: &str) -> Result<BoundQuery, SqlError> {
        let Statement::Select(s) = parse(sql).expect("parses") else {
            panic!("expected select");
        };
        bind(&s, &catalog())
    }

    #[test]
    fn binds_the_canonical_join_query() {
        let b = bind_sql(
            "SELECT * FROM t JOIN v ON t.key = v.key WHERE t.key < 500 GROUP BY key ORDER BY key",
        )
        .expect("binds");
        assert_eq!(
            b.logical.describe(),
            "sort\n  aggregate\n    join\n      filter [key < 500]\n        scan t\n      scan v\n"
        );
        assert_eq!(b.shape, RowShape::Groups);
        assert_eq!(b.column_names(), vec!["key", "count", "sum", "min", "max"]);
    }

    #[test]
    fn qualified_predicates_push_to_their_side() {
        let b =
            bind_sql("SELECT * FROM t JOIN v ON v.key = t.key WHERE v.key % 2 = 0").expect("binds");
        assert_eq!(
            b.logical.describe(),
            "join\n  scan t\n  filter [key % 2 == 0]\n    scan v\n"
        );
        let RowShape::Pairs { left, right } = &b.shape else {
            panic!("expected pairs");
        };
        assert_eq!((left.as_str(), right.as_str()), ("t", "v"));
    }

    #[test]
    fn unqualified_join_predicates_apply_after_the_join() {
        let b = bind_sql("SELECT * FROM t JOIN v ON t.key = v.key WHERE key < 10").expect("binds");
        assert_eq!(
            b.logical.describe(),
            "filter [key < 10]\n  join\n    scan t\n    scan v\n"
        );
    }

    #[test]
    fn unknown_table_errors_carry_the_span() {
        let sql = "SELECT * FROM nosuch";
        let err = bind_sql(sql).unwrap_err();
        assert_eq!(err.message, "unknown table \"nosuch\"");
        assert_eq!(&sql[err.span.start..err.span.end], "nosuch");
    }

    #[test]
    fn non_key_predicates_are_rejected() {
        let err = bind_sql("SELECT * FROM t WHERE payload < 5").unwrap_err();
        assert!(err.message.contains("key only"), "{}", err.message);
    }

    #[test]
    fn projection_resolution_and_ambiguity() {
        let b = bind_sql("SELECT key, v.payload FROM t JOIN v ON t.key = v.key").expect("binds");
        assert_eq!(b.projection, vec![0, 2]);
        assert_eq!(b.column_names(), vec!["key", "v.payload"]);
        let err = bind_sql("SELECT payload FROM t JOIN v ON t.key = v.key").unwrap_err();
        assert!(err.message.contains("ambiguous"), "{}", err.message);
        let err = bind_sql("SELECT nope FROM t").unwrap_err();
        assert!(err.message.contains("unknown column"), "{}", err.message);
    }

    #[test]
    fn join_condition_shape_is_enforced() {
        let err = bind_sql("SELECT * FROM t JOIN v ON t.payload = v.key").unwrap_err();
        assert!(err.message.contains("equi-joins on key"), "{}", err.message);
        let err = bind_sql("SELECT * FROM t JOIN v ON key = key").unwrap_err();
        assert!(
            err.message.contains("qualify both sides"),
            "{}",
            err.message
        );
        let err = bind_sql("SELECT * FROM t JOIN v ON t.key = t.key").unwrap_err();
        assert!(err.message.contains("must relate"), "{}", err.message);
    }
}
