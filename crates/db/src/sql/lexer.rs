//! Hand-rolled SQL lexer: identifiers, integer literals, single-quoted
//! strings, and the punctuation the subset needs, each with its span.

use crate::error::{Span, SqlError};

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// Byte range of the token in the statement.
    pub span: Span,
}

/// Token payloads of the SQL subset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (stored lowercased; keywords are decided by
    /// the parser).
    Ident(String),
    /// Unsigned integer literal.
    Number(u64),
    /// Single-quoted string literal (contents without quotes).
    StringLit(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `%`
    Percent,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Display form for "expected X, found Y" diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier {s:?}"),
            TokenKind::Number(n) => format!("number {n}"),
            TokenKind::StringLit(s) => format!("string '{s}'"),
            TokenKind::LParen => "'('".into(),
            TokenKind::RParen => "')'".into(),
            TokenKind::Comma => "','".into(),
            TokenKind::Semicolon => "';'".into(),
            TokenKind::Star => "'*'".into(),
            TokenKind::Dot => "'.'".into(),
            TokenKind::Eq => "'='".into(),
            TokenKind::Lt => "'<'".into(),
            TokenKind::Ge => "'>='".into(),
            TokenKind::Percent => "'%'".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// Lexes a whole statement.
///
/// # Errors
/// Returns a span-carrying [`SqlError`] on unexpected characters,
/// unterminated strings, or numeric overflow.
pub fn lex(sql: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment: skip to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push1(&mut tokens, TokenKind::LParen, &mut i),
            ')' => push1(&mut tokens, TokenKind::RParen, &mut i),
            ',' => push1(&mut tokens, TokenKind::Comma, &mut i),
            ';' => push1(&mut tokens, TokenKind::Semicolon, &mut i),
            '*' => push1(&mut tokens, TokenKind::Star, &mut i),
            '.' => push1(&mut tokens, TokenKind::Dot, &mut i),
            '=' => push1(&mut tokens, TokenKind::Eq, &mut i),
            '%' => push1(&mut tokens, TokenKind::Percent, &mut i),
            '<' => push1(&mut tokens, TokenKind::Lt, &mut i),
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        span: Span::new(start, i),
                    });
                } else {
                    return Err(SqlError::new(
                        "unsupported operator '>' (supported: <, >=, %)",
                        Span::new(start, start + 1),
                    ));
                }
            }
            '\'' => {
                i += 1;
                let lit_start = i;
                while i < bytes.len() && bytes[i] != b'\'' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(SqlError::new(
                        "unterminated string literal",
                        Span::new(start, i),
                    ));
                }
                let s = sql[lit_start..i].to_string();
                i += 1; // closing quote
                tokens.push(Token {
                    kind: TokenKind::StringLit(s),
                    span: Span::new(start, i),
                });
            }
            '0'..='9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // `_` separators for readability, e.g. 10_000.
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                    i += 1;
                }
                let text: String = sql[start..i].chars().filter(|c| *c != '_').collect();
                let n: u64 = text.parse().map_err(|_| {
                    SqlError::new(
                        format!("integer literal {text:?} out of range"),
                        Span::new(start, i),
                    )
                })?;
                tokens.push(Token {
                    kind: TokenKind::Number(n),
                    span: Span::new(start, i),
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(sql[start..i].to_ascii_lowercase()),
                    span: Span::new(start, i),
                });
            }
            other => {
                return Err(SqlError::new(
                    format!("unexpected character {other:?}"),
                    Span::new(start, start + other.len_utf8()),
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(sql.len(), sql.len()),
    });
    Ok(tokens)
}

fn push1(tokens: &mut Vec<Token>, kind: TokenKind, i: &mut usize) {
    tokens.push(Token {
        kind,
        span: Span::new(*i, *i + 1),
    });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        lex(sql)
            .expect("lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_the_subset() {
        assert_eq!(
            kinds("SELECT * FROM t WHERE key >= 10_000;"),
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Star,
                TokenKind::Ident("from".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Ident("where".into()),
                TokenKind::Ident("key".into()),
                TokenKind::Ge,
                TokenKind::Number(10_000),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_strings() {
        assert_eq!(
            kinds("key -- trailing comment\n< 'abc'"),
            vec![
                TokenKind::Ident("key".into()),
                TokenKind::Lt,
                TokenKind::StringLit("abc".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn spans_point_into_the_source() {
        let toks = lex("a = 42").expect("lexes");
        assert_eq!(toks[2].span, Span::new(4, 6));
    }

    #[test]
    fn errors_carry_spans() {
        let err = lex("SELECT ? FROM t").unwrap_err();
        assert_eq!(err.span, Span::new(7, 8));
        assert!(err.message.contains("unexpected character"));
        let err = lex("key > 5").unwrap_err();
        assert!(err.message.contains("unsupported operator"));
    }

    #[test]
    fn overflowing_literals_error_with_the_literal_span() {
        // One past u64::MAX, with and without underscore separators:
        // a span-carrying error, never a panic or a silent wrap.
        for lit in ["18446744073709551616", "18_446_744_073_709_551_616"] {
            let sql = format!("key < {lit}");
            let err = lex(&sql).unwrap_err();
            assert!(err.message.contains("out of range"), "{}", err.message);
            assert_eq!(&sql[err.span.start..err.span.end], lit);
        }
        // u64::MAX itself still lexes.
        let toks = lex("18446744073709551615").expect("max fits");
        assert_eq!(toks[0].kind, TokenKind::Number(u64::MAX));
    }
}
