//! Recursive-descent parser for the SQL subset:
//!
//! ```text
//! statement := create | insert | drop | checkpoint | show | set | select | explain
//! create    := CREATE TABLE ident AS WISCONSIN '(' n [',' n [',' n]] ')'
//! insert    := INSERT INTO ident VALUES '(' n ')' (',' '(' n ')')*
//! drop      := DROP TABLE ident
//! checkpoint:= CHECKPOINT
//! show      := SHOW (TABLES | METRICS)
//! set       := SET ident '=' (n | ON | OFF)
//! explain   := EXPLAIN [ANALYZE] select
//! select    := SELECT proj FROM tableref (join)* [where] [group] [order] [limit]
//! proj      := '*' | column (',' column)*
//! tableref  := ident [AS ident]
//! join      := [INNER] JOIN tableref ON column '=' column
//! where     := WHERE pred (AND pred)*
//! pred      := column '<' n | column '>=' n | column '%' n '=' n
//! group     := GROUP BY column
//! order     := ORDER BY column
//! limit     := LIMIT n
//! column    := ident ['.' ident]
//! ```
//!
//! Every statement must be terminated by `;` or end-of-input; anything
//! after that is a span-carrying "trailing tokens" error.

use super::ast::{
    Column, Ident, Join, PredForm, Select, SelectItem, SetValue, Statement, WherePred,
};
use super::lexer::{lex, Token, TokenKind};
use crate::error::{Span, SqlError};

/// Parses one statement.
///
/// # Errors
/// Returns a span-carrying [`SqlError`] on any lexical, syntactic, or
/// shape violation (including trailing tokens after the statement).
pub fn parse(sql: &str) -> Result<Statement, SqlError> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_terminator()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    /// Consumes the next token if it is the keyword `kw` (lowercase).
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(s) = &self.peek().kind {
            if s == kw {
                self.advance();
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<Token, SqlError> {
        let t = self.peek().clone();
        if self.eat_keyword(kw) {
            Ok(t)
        } else {
            Err(SqlError::new(
                format!(
                    "expected keyword {}, found {}",
                    kw.to_ascii_uppercase(),
                    t.kind.describe()
                ),
                t.span,
            ))
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token, SqlError> {
        let t = self.peek().clone();
        if &t.kind == kind {
            self.advance();
            Ok(t)
        } else {
            Err(SqlError::new(
                format!("expected {what}, found {}", t.kind.describe()),
                t.span,
            ))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<Ident, SqlError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(Ident { name, span: t.span })
            }
            other => Err(SqlError::new(
                format!("expected {what}, found {}", other.describe()),
                t.span,
            )),
        }
    }

    /// An integer where the grammar requires one; string literals get the
    /// type-mismatch diagnostic.
    fn expect_number(&mut self, what: &str) -> Result<(u64, Span), SqlError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Number(n) => {
                self.advance();
                Ok((n, t.span))
            }
            TokenKind::StringLit(s) => Err(SqlError::new(
                format!("type mismatch: expected {what}, found string '{s}'"),
                t.span,
            )),
            other => Err(SqlError::new(
                format!("expected {what}, found {}", other.describe()),
                t.span,
            )),
        }
    }

    /// A non-negative decimal literal, e.g. `1.2` — lexed as
    /// `Number Dot Number`, reassembled here. The fraction's leading
    /// zeros survive via its span width (`.05` has a two-digit span).
    fn expect_decimal(&mut self, what: &str) -> Result<(f64, Span), SqlError> {
        let (whole, start) = self.expect_number(what)?;
        let mut value = whole as f64;
        let mut end = start;
        if self.peek().kind == TokenKind::Dot {
            self.advance();
            let (frac, f_span) = self.expect_number("fraction digits after '.'")?;
            let digits = f_span.end.saturating_sub(f_span.start).max(1);
            value += frac as f64 / 10f64.powi(digits as i32);
            end = f_span;
        }
        Ok((value, start.to(end)))
    }

    /// The right-hand side of `SET`: an integer, or `on`/`off` for
    /// boolean knobs.
    fn set_value(&mut self) -> Result<(SetValue, Span), SqlError> {
        let t = self.peek().clone();
        match &t.kind {
            TokenKind::Ident(s) if s == "on" => {
                self.advance();
                Ok((SetValue::Flag(true), t.span))
            }
            TokenKind::Ident(s) if s == "off" => {
                self.advance();
                Ok((SetValue::Flag(false), t.span))
            }
            _ => {
                let (n, span) = self.expect_number("an integer knob value (or on/off)")?;
                Ok((SetValue::Num(n), span))
            }
        }
    }

    fn eat_terminator(&mut self) -> Result<(), SqlError> {
        if self.peek().kind == TokenKind::Semicolon {
            self.advance();
        }
        let t = self.peek().clone();
        if t.kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(SqlError::new(
                format!("trailing tokens after statement: {}", t.kind.describe()),
                Span::new(t.span.start, self.tokens[self.tokens.len() - 1].span.end),
            ))
        }
    }

    fn statement(&mut self) -> Result<Statement, SqlError> {
        let t = self.peek().clone();
        if self.eat_keyword("create") {
            return self.create();
        }
        if self.eat_keyword("insert") {
            return self.insert();
        }
        if self.eat_keyword("drop") {
            self.expect_keyword("table")?;
            let table = self.expect_ident("table name")?;
            return Ok(Statement::Drop { table });
        }
        if self.eat_keyword("checkpoint") {
            return Ok(Statement::Checkpoint);
        }
        if self.eat_keyword("show") {
            if self.eat_keyword("metrics") {
                return Ok(Statement::ShowMetrics);
            }
            let t = self.peek().clone();
            if self.eat_keyword("tables") {
                return Ok(Statement::ShowTables);
            }
            return Err(SqlError::new(
                format!(
                    "expected TABLES or METRICS after SHOW, found {}",
                    t.kind.describe()
                ),
                t.span,
            ));
        }
        if self.eat_keyword("set") {
            let name = self.expect_ident("knob name")?;
            self.expect(&TokenKind::Eq, "'='")?;
            let (value, value_span) = self.set_value()?;
            return Ok(Statement::Set {
                name,
                value,
                value_span,
            });
        }
        if self.eat_keyword("explain") {
            if self.eat_keyword("analyze") {
                self.expect_keyword("select")?;
                return Ok(Statement::ExplainAnalyze(self.select()?));
            }
            self.expect_keyword("select")?;
            return Ok(Statement::Explain(self.select()?));
        }
        if self.eat_keyword("select") {
            return Ok(Statement::Select(self.select()?));
        }
        Err(SqlError::new(
            format!(
                "expected CREATE, INSERT, DROP, CHECKPOINT, SHOW, SET, EXPLAIN, or SELECT, found {}",
                t.kind.describe()
            ),
            t.span,
        ))
    }

    fn insert(&mut self) -> Result<Statement, SqlError> {
        self.expect_keyword("into")?;
        let table = self.expect_ident("table name")?;
        self.expect_keyword("values")?;
        let mut keys = Vec::new();
        loop {
            self.expect(&TokenKind::LParen, "'('")?;
            keys.push(self.expect_number("a key")?.0);
            self.expect(&TokenKind::RParen, "')'")?;
            if self.peek().kind == TokenKind::Comma {
                self.advance();
            } else {
                break;
            }
        }
        Ok(Statement::Insert { table, keys })
    }

    fn create(&mut self) -> Result<Statement, SqlError> {
        self.expect_keyword("table")?;
        let table = self.expect_ident("table name")?;
        self.expect_keyword("as")?;
        self.expect_keyword("wisconsin")?;
        self.expect(&TokenKind::LParen, "'('")?;
        // A row count of 0 is allowed: it creates an empty table.
        let (rows, _) = self.expect_number("a row count")?;
        let mut fanout = 1;
        let mut seed = 42;
        let mut skew = 0.0;
        if self.peek().kind == TokenKind::Comma {
            self.advance();
            let (f, f_span) = self.expect_number("a fanout")?;
            if f == 0 {
                return Err(SqlError::new("fanout must be positive", f_span));
            }
            fanout = f;
            if self.peek().kind == TokenKind::Comma {
                self.advance();
                seed = self.expect_number("a seed")?.0;
                if self.peek().kind == TokenKind::Comma {
                    self.advance();
                    let (s, s_span) = self.expect_decimal("a skew exponent")?;
                    if !(0.0..=4.0).contains(&s) {
                        return Err(SqlError::new("skew must be between 0 and 4", s_span));
                    }
                    skew = s;
                }
            }
        }
        self.expect(&TokenKind::RParen, "')'")?;
        Ok(Statement::Create {
            table,
            rows,
            fanout,
            seed,
            skew,
        })
    }

    fn column(&mut self) -> Result<Column, SqlError> {
        let first = self.expect_ident("a column")?;
        if self.peek().kind == TokenKind::Dot {
            self.advance();
            let name = self.expect_ident("a column name after '.'")?;
            Ok(Column {
                qualifier: Some(first),
                name,
            })
        } else {
            Ok(Column {
                qualifier: None,
                name: first,
            })
        }
    }

    fn select(&mut self) -> Result<Select, SqlError> {
        // Projection list.
        let mut projection = Vec::new();
        loop {
            if self.peek().kind == TokenKind::Star {
                self.advance();
                projection.push(SelectItem::Star);
            } else {
                projection.push(SelectItem::Column(self.column()?));
            }
            if self.peek().kind == TokenKind::Comma {
                self.advance();
            } else {
                break;
            }
        }

        self.expect_keyword("from")?;
        let (from, from_alias) = self.table_ref()?;

        // Zero or more join clauses.
        let mut joins = Vec::new();
        loop {
            let saw_inner = self.eat_keyword("inner");
            if self.eat_keyword("join") {
                let (table, alias) = self.table_ref()?;
                self.expect_keyword("on")?;
                let left = self.column()?;
                self.expect(&TokenKind::Eq, "'=' in the join condition")?;
                let right = self.column()?;
                let span = left.span().to(right.span());
                joins.push(Join {
                    table,
                    alias,
                    left,
                    right,
                    span,
                });
            } else if saw_inner {
                let t = self.peek().clone();
                return Err(SqlError::new(
                    format!("expected JOIN after INNER, found {}", t.kind.describe()),
                    t.span,
                ));
            } else {
                break;
            }
        }

        // Optional WHERE with AND-chained predicates.
        let mut predicates = Vec::new();
        if self.eat_keyword("where") {
            loop {
                predicates.push(self.predicate()?);
                if !self.eat_keyword("and") {
                    break;
                }
            }
        }

        let mut group_by = None;
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            group_by = Some(self.column()?);
        }
        let mut order_by = None;
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            order_by = Some(self.column()?);
        }
        let mut limit = None;
        if self.eat_keyword("limit") {
            limit = Some(self.expect_number("a row limit")?.0);
        }

        Ok(Select {
            projection,
            from,
            from_alias,
            joins,
            predicates,
            group_by,
            order_by,
            limit,
        })
    }

    /// A table reference with an optional `AS alias`.
    fn table_ref(&mut self) -> Result<(Ident, Option<Ident>), SqlError> {
        let table = self.expect_ident("a table name")?;
        let alias = if self.eat_keyword("as") {
            Some(self.expect_ident("an alias after AS")?)
        } else {
            None
        };
        Ok((table, alias))
    }

    fn predicate(&mut self) -> Result<WherePred, SqlError> {
        let column = self.column()?;
        let start = column.span();
        let t = self.advance();
        let (form, end) = match t.kind {
            TokenKind::Lt => {
                let (b, s) = self.expect_number("an integer bound")?;
                (PredForm::Below(b), s)
            }
            TokenKind::Ge => {
                let (b, s) = self.expect_number("an integer bound")?;
                (PredForm::AtLeast(b), s)
            }
            TokenKind::Percent => {
                let (modulus, m_span) = self.expect_number("a modulus")?;
                if modulus == 0 {
                    return Err(SqlError::new("modulus must be positive", m_span));
                }
                self.expect(&TokenKind::Eq, "'=' after the modulus")?;
                let (residue, s) = self.expect_number("a residue")?;
                (PredForm::ModEq { modulus, residue }, s)
            }
            other => {
                return Err(SqlError::new(
                    format!(
                        "expected a predicate operator (<, >=, %), found {}",
                        other.describe()
                    ),
                    t.span,
                ))
            }
        };
        Ok(WherePred {
            column,
            form,
            span: start.to(end),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_create() {
        let stmt = parse("CREATE TABLE t AS WISCONSIN(10_000);").expect("parses");
        assert_eq!(
            stmt.describe(),
            "create t as wisconsin(rows=10000, fanout=1, seed=42)\n"
        );
        let stmt = parse("create table v as wisconsin(1000, 4, 7)").expect("parses");
        assert_eq!(
            stmt.describe(),
            "create v as wisconsin(rows=1000, fanout=4, seed=7)\n"
        );
    }

    #[test]
    fn golden_create_with_skew() {
        let stmt = parse("CREATE TABLE z AS WISCONSIN(1000, 4, 7, 1.2);").expect("parses");
        assert_eq!(
            stmt.describe(),
            "create z as wisconsin(rows=1000, fanout=4, seed=7, skew=1.2)\n"
        );
        // Whole-number and leading-zero fractions both reassemble.
        let stmt = parse("create table z as wisconsin(100, 2, 3, 2)").expect("parses");
        assert_eq!(
            stmt.describe(),
            "create z as wisconsin(rows=100, fanout=2, seed=3, skew=2)\n"
        );
        let stmt = parse("create table z as wisconsin(100, 2, 3, 0.05)").expect("parses");
        assert_eq!(
            stmt.describe(),
            "create z as wisconsin(rows=100, fanout=2, seed=3, skew=0.05)\n"
        );
        // skew=0 is the uniform default and renders without the knob.
        let stmt = parse("create table z as wisconsin(100, 2, 3, 0.0)").expect("parses");
        assert_eq!(
            stmt.describe(),
            "create z as wisconsin(rows=100, fanout=2, seed=3)\n"
        );
    }

    #[test]
    fn out_of_range_skew_errors_point_at_the_literal() {
        let sql = "CREATE TABLE z AS WISCONSIN(100, 2, 3, 4.5)";
        let err = parse(sql).unwrap_err();
        assert!(err.message.contains("skew must be"), "{}", err.message);
        assert_eq!(&sql[err.span.start..err.span.end], "4.5");
        let err = parse("CREATE TABLE z AS WISCONSIN(100, 2, 3, 1.)").unwrap_err();
        assert!(err.message.contains("fraction digits"), "{}", err.message);
    }

    #[test]
    fn golden_full_select() {
        let stmt = parse(
            "SELECT t.key, v.payload FROM t JOIN v ON t.key = v.key \
             WHERE t.key < 500 AND t.key % 2 = 0 GROUP BY key ORDER BY key LIMIT 10;",
        )
        .expect("parses");
        assert_eq!(
            stmt.describe(),
            "select\n\
             \x20 project t.key, v.payload\n\
             \x20 from t\n\
             \x20 join v on t.key = v.key\n\
             \x20 where t.key < 500\n\
             \x20 where t.key % 2 = 0\n\
             \x20 group by key\n\
             \x20 order by key\n\
             \x20 limit 10\n"
        );
    }

    #[test]
    fn golden_explain_and_simple_clauses() {
        let stmt = parse("EXPLAIN SELECT * FROM t ORDER BY key").expect("parses");
        assert_eq!(
            stmt.describe(),
            "explain select\n  project *\n  from t\n  order by key\n"
        );
        assert_eq!(parse("SHOW TABLES;").unwrap().describe(), "show tables\n");
        assert_eq!(parse("SHOW METRICS;").unwrap().describe(), "show metrics\n");
        assert_eq!(parse("DROP TABLE t;").unwrap().describe(), "drop t\n");
        assert_eq!(
            parse("INSERT INTO t VALUES (7);").unwrap().describe(),
            "insert t keys [7]\n"
        );
        assert_eq!(
            parse("insert into t values (1), (2), (3)")
                .unwrap()
                .describe(),
            "insert t keys [1, 2, 3]\n"
        );
        assert_eq!(parse("CHECKPOINT;").unwrap().describe(), "checkpoint\n");
        let err = parse("INSERT INTO t VALUES (1, 2)").unwrap_err();
        assert!(err.message.contains("')'"), "{}", err.message);
        assert!(parse("INSERT INTO t").is_err());
        assert_eq!(
            parse("SET threads = 4;").unwrap().describe(),
            "set threads = 4\n"
        );
        assert_eq!(
            parse("SET timing = on;").unwrap().describe(),
            "set timing = on\n"
        );
        assert_eq!(
            parse("SET profile = OFF;").unwrap().describe(),
            "set profile = off\n"
        );
        assert_eq!(
            parse("EXPLAIN ANALYZE SELECT * FROM t ORDER BY key")
                .unwrap()
                .describe(),
            "explain analyze select\n  project *\n  from t\n  order by key\n"
        );
        let err = parse("SHOW knobs").unwrap_err();
        assert!(err.message.contains("TABLES or METRICS"), "{}", err.message);
        assert_eq!(
            parse("SELECT * FROM t WHERE key >= 100;")
                .unwrap()
                .describe(),
            "select\n  project *\n  from t\n  where key >= 100\n"
        );
    }

    #[test]
    fn trailing_tokens_are_rejected_with_spans() {
        let sql = "SELECT * FROM t; garbage";
        let err = parse(sql).unwrap_err();
        assert!(err.message.contains("trailing tokens"), "{}", err.message);
        assert_eq!(&sql[err.span.start..err.span.end], "garbage");
    }

    #[test]
    fn type_mismatch_points_at_the_literal() {
        let sql = "SELECT * FROM t WHERE key < 'abc'";
        let err = parse(sql).unwrap_err();
        assert!(err.message.contains("type mismatch"), "{}", err.message);
        assert_eq!(&sql[err.span.start..err.span.end], "'abc'");
    }

    #[test]
    fn malformed_clauses_error_in_place() {
        assert!(parse("SELECT FROM t").is_err());
        let err = parse("SELECT * FROM t WHERE key = 5").unwrap_err();
        assert!(err.message.contains("predicate operator"));
        // An empty table is legitimate; a zero fanout is not.
        assert!(parse("CREATE TABLE t AS WISCONSIN(0)").is_ok());
        let err = parse("CREATE TABLE t AS WISCONSIN(10, 0)").unwrap_err();
        assert!(err.message.contains("fanout must be positive"));
        let err = parse("SELECT * FROM t WHERE key % 0 = 1").unwrap_err();
        assert!(err.message.contains("modulus must be positive"));
    }
}
