//! Error types of the facade: span-carrying SQL errors and the
//! database-level error umbrella.

use planner::{ExecError, PlanError};

/// A half-open byte range into the SQL text an error refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first offending character.
    pub start: usize,
    /// Byte offset one past the last offending character.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// The smallest span covering both inputs.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// A SQL front-end error: lexing, parsing, or binding. Always carries
/// the span of the offending text so clients can point at it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SqlError {
    /// What went wrong.
    pub message: String,
    /// Where in the statement it went wrong.
    pub span: Span,
}

impl SqlError {
    /// An error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Self {
            message: message.into(),
            span,
        }
    }

    /// Renders the error with a caret line pointing into `sql`:
    ///
    /// ```text
    /// error at 14..15: unknown table "v"
    ///   SELECT * FROM v;
    ///                 ^
    /// ```
    pub fn render(&self, sql: &str) -> String {
        let mut out = format!(
            "error at {}..{}: {}\n",
            self.span.start, self.span.end, self
        );
        let start = self.span.start.min(sql.len());
        let line_start = sql[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = sql[start..].find('\n').map_or(sql.len(), |i| start + i);
        let line = &sql[line_start..line_end];
        let col = sql[line_start..start].chars().count();
        let width = sql[start..self.span.end.clamp(start, line_end)]
            .chars()
            .count()
            .max(1);
        out.push_str(&format!("  {line}\n"));
        out.push_str(&format!("  {}{}\n", " ".repeat(col), "^".repeat(width)));
        out
    }
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SqlError {}

/// Anything a [`crate::Session`] call can fail with.
#[derive(Debug)]
pub enum DbError {
    /// SQL front-end failure (lexing, parsing, binding) with a span.
    Sql(SqlError),
    /// The planner rejected the query.
    Plan(PlanError),
    /// Execution failed.
    Exec(ExecError),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Sql(e) => write!(f, "{e}"),
            DbError::Plan(e) => write!(f, "{e}"),
            DbError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<SqlError> for DbError {
    fn from(e: SqlError) -> Self {
        DbError::Sql(e)
    }
}

impl From<PlanError> for DbError {
    fn from(e: PlanError) -> Self {
        DbError::Plan(e)
    }
}

impl From<ExecError> for DbError {
    fn from(e: ExecError) -> Self {
        DbError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caret_rendering_points_at_the_span() {
        let sql = "SELECT * FROM missing;";
        let err = SqlError::new("unknown table \"missing\"", Span::new(14, 21));
        let rendered = err.render(sql);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[0], "error at 14..21: unknown table \"missing\"");
        assert_eq!(lines[1], "  SELECT * FROM missing;");
        assert_eq!(lines[2], "                ^^^^^^^");
    }

    #[test]
    fn caret_rendering_survives_out_of_range_spans() {
        let err = SqlError::new("unexpected end of input", Span::new(99, 100));
        let rendered = err.render("SELECT");
        assert!(rendered.contains("unexpected end of input"));
    }
}
