//! Error types of the facade: span-carrying SQL errors and the
//! database-level error umbrella.

use planner::{ExecError, PlanError};

/// A half-open byte range into the SQL text an error refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first offending character.
    pub start: usize,
    /// Byte offset one past the last offending character.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// The smallest span covering both inputs.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// A SQL front-end error: lexing, parsing, or binding. Always carries
/// the span of the offending text so clients can point at it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SqlError {
    /// What went wrong.
    pub message: String,
    /// Where in the statement it went wrong.
    pub span: Span,
}

impl SqlError {
    /// An error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Self {
            message: message.into(),
            span,
        }
    }

    /// Renders the error with a caret line pointing into `sql`:
    ///
    /// ```text
    /// error at 14..15: unknown table "v"
    ///   SELECT * FROM v;
    ///                 ^
    /// ```
    pub fn render(&self, sql: &str) -> String {
        let mut out = format!(
            "error at {}..{}: {}\n",
            self.span.start, self.span.end, self
        );
        let start = self.span.start.min(sql.len());
        let line_start = sql[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = sql[start..].find('\n').map_or(sql.len(), |i| start + i);
        let line = &sql[line_start..line_end];
        let col = sql[line_start..start].chars().count();
        let width = sql[start..self.span.end.clamp(start, line_end)]
            .chars()
            .count()
            .max(1);
        out.push_str(&format!("  {line}\n"));
        out.push_str(&format!("  {}{}\n", " ".repeat(col), "^".repeat(width)));
        out
    }
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SqlError {}

/// A durable-storage failure: WAL append, checkpoint I/O, or crash
/// recovery. Spanless (storage has no SQL text to point into) but
/// actionable: always the file, the offset when one is known, and the
/// cause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StorageError {
    /// Path of the file involved.
    pub path: String,
    /// Byte offset of the failure within the file, when known.
    pub offset: Option<u64>,
    /// What went wrong.
    pub cause: String,
}

impl StorageError {
    /// An error for `path` with a known offset.
    pub fn at(path: impl Into<String>, offset: u64, cause: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            offset: Some(offset),
            cause: cause.into(),
        }
    }

    /// An error for `path` without a meaningful offset.
    pub fn file(path: impl Into<String>, cause: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            offset: None,
            cause: cause.into(),
        }
    }
}

impl From<pmem_sim::PmError> for StorageError {
    fn from(e: pmem_sim::PmError) -> Self {
        match e {
            pmem_sim::PmError::Io {
                path,
                offset,
                cause,
            } => StorageError::at(path, offset, cause),
            other => StorageError::file("", other.to_string()),
        }
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.offset {
            Some(off) => write!(f, "storage error at {}+{}: {}", self.path, off, self.cause),
            None => write!(f, "storage error in {}: {}", self.path, self.cause),
        }
    }
}

impl std::error::Error for StorageError {}

/// Anything a [`crate::Session`] call can fail with.
#[derive(Debug)]
pub enum DbError {
    /// SQL front-end failure (lexing, parsing, binding) with a span.
    Sql(SqlError),
    /// The planner rejected the query.
    Plan(PlanError),
    /// Execution failed.
    Exec(ExecError),
    /// Durable storage failed (WAL, checkpoint, or recovery).
    Storage(StorageError),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Sql(e) => write!(f, "{e}"),
            DbError::Plan(e) => write!(f, "{e}"),
            DbError::Exec(e) => write!(f, "{e}"),
            DbError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<StorageError> for DbError {
    fn from(e: StorageError) -> Self {
        DbError::Storage(e)
    }
}

impl From<SqlError> for DbError {
    fn from(e: SqlError) -> Self {
        DbError::Sql(e)
    }
}

impl From<PlanError> for DbError {
    fn from(e: PlanError) -> Self {
        DbError::Plan(e)
    }
}

impl From<ExecError> for DbError {
    fn from(e: ExecError) -> Self {
        DbError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caret_rendering_points_at_the_span() {
        let sql = "SELECT * FROM missing;";
        let err = SqlError::new("unknown table \"missing\"", Span::new(14, 21));
        let rendered = err.render(sql);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[0], "error at 14..21: unknown table \"missing\"");
        assert_eq!(lines[1], "  SELECT * FROM missing;");
        assert_eq!(lines[2], "                ^^^^^^^");
    }

    #[test]
    fn storage_errors_carry_path_and_offset() {
        let e = StorageError::at("/tmp/wal.log", 4096, "bad frame CRC");
        assert_eq!(
            e.to_string(),
            "storage error at /tmp/wal.log+4096: bad frame CRC"
        );
        let e = StorageError::file("/tmp/ckpt.bin", "truncated header");
        assert_eq!(
            e.to_string(),
            "storage error in /tmp/ckpt.bin: truncated header"
        );
        let e: StorageError = pmem_sim::PmError::Io {
            path: "f".into(),
            offset: 7,
            cause: "injected crash".into(),
        }
        .into();
        assert_eq!(e.offset, Some(7));
    }

    #[test]
    fn caret_rendering_survives_out_of_range_spans() {
        let err = SqlError::new("unexpected end of input", Span::new(99, 100));
        let rendered = err.render("SELECT");
        assert!(rendered.contains("unexpected end of input"));
    }
}
