//! # wl-db — the database facade over the write-limited engine
//!
//! Everything below this crate (simulated device, write-limited sort and
//! join algorithms, cost models, the plan enumerator) is a library; this
//! crate makes it a *database*. One [`Database`] owns the device, the
//! persistence layer, the catalog of named Wisconsin tables, and the
//! default planner knobs; [`Session`]s carry per-connection knobs
//! (threads, DRAM budget, planning λ, batch size) and parse a small SQL
//! subset into [`planner::LogicalPlan`]s; results come back as pull-based
//! [`ResultStream`]s of row batches with an explain/concordance report
//! attached.
//!
//! The SQL subset:
//!
//! ```sql
//! CREATE TABLE t AS WISCONSIN(10000);          -- 10k unique permuted keys
//! CREATE TABLE v AS WISCONSIN(10000, 4);       -- 4 records per key (40k rows)
//! SELECT * FROM t WHERE key < 100 ORDER BY key LIMIT 10;
//! SELECT * FROM t JOIN v ON t.key = v.key WHERE t.key % 2 = 0 GROUP BY key;
//! EXPLAIN SELECT * FROM t JOIN v ON t.key = v.key ORDER BY key;
//! EXPLAIN ANALYZE SELECT * FROM t ORDER BY key;  -- run + per-node profile
//! SET threads = 4;                             -- also: batch, lambda, memory
//! SET timing = on;                             -- also: profile (on/off)
//! SHOW TABLES; SHOW METRICS; DROP TABLE t;
//! INSERT INTO t VALUES (10000), (10001);       -- key-derived Wisconsin rows
//! CHECKPOINT;                                  -- durable databases only
//! ```
//!
//! A database opened with [`Database::open`] (or `wlsql --path dir`) is
//! durable: DDL and inserts are WAL-logged with fsync before the ack,
//! `CHECKPOINT` materializes the catalog, and [`Database::reopen`]
//! replays the committed prefix after a crash (see the `wal` and
//! `durable` modules).
//!
//! ```
//! use wl_db::{Database, Response};
//!
//! let db = Database::builder().lambda(15.0).dram_records(500).build();
//! let mut session = db.session();
//! session.execute("CREATE TABLE t AS WISCONSIN(1000)").unwrap();
//! session.execute("CREATE TABLE v AS WISCONSIN(1000, 4)").unwrap();
//!
//! let mut stream = session
//!     .query("SELECT * FROM t JOIN v ON t.key = v.key GROUP BY key ORDER BY key")
//!     .unwrap();
//! let mut rows = 0;
//! while let Some(batch) = stream.next_batch().unwrap() {
//!     rows += batch.rows.len(); // delivered incrementally
//! }
//! assert_eq!(rows, 1000);
//! let stats = stream.stats().unwrap();
//! assert!(stats.io.cl_reads > 0);
//! println!("{}", stream.explain()); // plan, knobs, predicted vs measured
//! ```
//!
//! The `wlsql` binary (`cargo run -p wl-db --bin wlsql`) wraps a session
//! in a line-oriented REPL that streams batches as they are pulled.

#![warn(missing_docs)]

pub mod database;
pub mod durable;
pub mod error;
pub mod metrics;
pub mod session;
pub mod sql;
pub mod stream;
pub mod wal;

pub use database::{Database, DatabaseBuilder, DdlError};
pub use durable::{CheckpointData, CheckpointTable, RecoveryReport};
pub use error::{DbError, Span, SqlError, StorageError};
pub use metrics::{EngineMetrics, MetricsSnapshot};
pub use session::{Response, Session, SessionConfig, MAX_THREADS};
pub use sql::{bind, parse, BoundQuery, RowShape, Statement};
pub use stream::{QueryStats, ResultStream, RowBatch};
pub use wal::{Wal, WalReadout, WalRecord};
