//! Pull-based query results: nothing executes until the first batch is
//! pulled, and rows are delivered in bounded [`RowBatch`]es instead of
//! one eager materialization.
//!
//! A [`ResultStream`] owns everything it needs (catalog snapshot with
//! shared table handles, device handle, its session's buffer pool), so
//! it is free of borrows and can outlive the [`crate::Session`] call
//! that produced it. Blocking operators still do their work all at once
//! — that cost is real and counted — but it is deferred to the first
//! pull, and delivery is incremental from then on.

use crate::error::DbError;
use crate::metrics::EngineMetrics;
use crate::sql::{BoundQuery, RowShape};
use planner::{
    execute_stream, execute_stream_profiled, render_analyze, render_analyze_plan, render_choices,
    render_concordance_stats, render_plan, AdaptedPlan, Catalog, ExecutedStream, OutputRows,
    PlannedQuery,
};
use pmem_sim::{BufferPool, IoStats, LayerKind, Pm, SpanNode};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One batch of projected result rows (all attributes are `u64`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowBatch {
    /// Projected column names, in output order.
    pub columns: Vec<String>,
    /// Row-major projected values.
    pub rows: Vec<Vec<u64>>,
}

/// Post-execution traffic summary of one query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryStats {
    /// Measured cacheline traffic of the run.
    pub io: IoStats,
    /// Simulated wall-clock seconds of the run.
    pub secs: f64,
    /// Host wall-clock seconds spent executing and draining (real time,
    /// unlike `secs`; varies run to run, so clients gate printing it on
    /// the `timing` knob).
    pub elapsed_secs: f64,
    /// Rows delivered to the client (after LIMIT).
    pub rows: u64,
    /// Batches delivered to the client.
    pub batches: u64,
}

/// Observability plumbing a [`crate::Session`] hands its streams: the
/// profile switch, where to deposit the finished span tree, and the
/// engine-wide registry to fold delivery/pool/wall counters into.
#[derive(Debug)]
pub(crate) struct StreamHooks {
    /// Record a span-tree profile for this query.
    pub profile: bool,
    /// The session's last-profile slot.
    pub sink: Arc<Mutex<Option<SpanNode>>>,
    /// The database's metrics registry.
    pub metrics: Arc<EngineMetrics>,
}

/// A streaming query result.
///
/// Pull batches with [`ResultStream::next_batch`] (or the [`Iterator`]
/// impl); once the stream is exhausted, [`ResultStream::stats`] reports
/// the measured traffic and [`ResultStream::explain`] the full
/// predicted-vs-measured report.
#[derive(Debug)]
pub struct ResultStream {
    planned: PlannedQuery,
    columns: Vec<String>,
    projection: Vec<usize>,
    shape: RowShape,
    limit: Option<u64>,
    batch_rows: usize,
    catalog: Catalog,
    dev: Pm,
    layer: LayerKind,
    pool: BufferPool,
    state: State,
    delivered: u64,
    batches: u64,
    hooks: StreamHooks,
    /// The span tree the profiled execution recorded (available as soon
    /// as the plan ran, i.e. after the first pull).
    profile: Option<SpanNode>,
    /// Evidence of a mid-run re-planning, when drift triggered one.
    adapted: Option<AdaptedPlan>,
    /// Host wall time accumulated across every pull.
    wall_ns: u64,
}

#[derive(Debug)]
enum State {
    /// Not yet executed; the first pull runs the plan.
    Pending,
    /// Executed; draining from `cursor`.
    Open {
        run: Box<ExecutedStream>,
        cursor: usize,
    },
    /// Finished. `ran` records whether the plan actually executed —
    /// `false` for the `LIMIT 0` short-circuit and for failed runs, so
    /// the explain report does not present the zeroed ledger as a
    /// measurement.
    Done { io: IoStats, secs: f64, ran: bool },
}

impl ResultStream {
    #[allow(clippy::too_many_arguments)] // one internal call site
    pub(crate) fn new(
        planned: PlannedQuery,
        bound: &BoundQuery,
        catalog: Catalog,
        dev: Pm,
        layer: LayerKind,
        pool: BufferPool,
        batch_rows: usize,
        hooks: StreamHooks,
    ) -> Self {
        // LIMIT 0 can never deliver a row: short-circuit to the drained
        // state so the first pull does not execute the plan (blocking
        // operators would otherwise run — and be charged — for nothing).
        let state = if bound.limit == Some(0) {
            State::Done {
                io: IoStats::default(),
                secs: 0.0,
                ran: false,
            }
        } else {
            State::Pending
        };
        Self {
            planned,
            columns: bound.column_names(),
            projection: bound.projection.clone(),
            shape: bound.shape.clone(),
            limit: bound.limit,
            batch_rows: batch_rows.max(1),
            catalog,
            dev,
            layer,
            pool,
            state,
            delivered: 0,
            batches: 0,
            hooks,
            profile: None,
            adapted: None,
            wall_ns: 0,
        }
    }

    /// Projected column names, available before execution.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The planned query (chosen algorithms, knobs, predictions).
    pub fn planned(&self) -> &PlannedQuery {
        &self.planned
    }

    /// Pulls the next batch of rows. The first call executes the plan
    /// (blocking operators run here — the cost is charged to the
    /// device); subsequent calls drain the result incrementally. Returns
    /// `Ok(None)` once exhausted (or once `LIMIT` rows were delivered).
    ///
    /// # Errors
    /// Returns [`DbError::Exec`] when execution fails; the stream is
    /// finished afterwards.
    pub fn next_batch(&mut self) -> Result<Option<RowBatch>, DbError> {
        let was_done = matches!(self.state, State::Done { .. });
        let t0 = Instant::now();
        let result = self.advance();
        self.wall_ns += t0.elapsed().as_nanos() as u64;
        match &result {
            Ok(Some(batch)) => {
                // Delivery is invisible to the simulated device (result
                // drains read uncounted), so the registry is where it
                // shows up.
                let rows = batch.rows.len() as u64;
                self.hooks
                    .metrics
                    .note_delivery(rows, rows * self.columns.len() as u64 * 8);
            }
            Ok(None) | Err(_) => {
                if !was_done {
                    if let State::Done { ran, .. } = self.state {
                        self.finish(ran);
                    }
                }
            }
        }
        result
    }

    /// Deposits the profile and folds this run's counters into the
    /// engine registry — once, when the stream transitions to done.
    fn finish(&mut self, ran: bool) {
        if !ran {
            return;
        }
        if self.profile.is_some() {
            *self.hooks.sink.lock().expect("profile sink") = self.profile.clone();
        }
        self.hooks.metrics.note_run(
            self.pool.reservations(),
            self.pool.exhausted(),
            self.pool.high_water() as u64,
            self.wall_ns,
        );
    }

    fn advance(&mut self) -> Result<Option<RowBatch>, DbError> {
        loop {
            match &mut self.state {
                State::Pending => {
                    self.hooks.metrics.note_query();
                    let run = if self.hooks.profile {
                        execute_stream_profiled(
                            &self.planned,
                            &self.catalog,
                            &self.dev,
                            self.layer,
                            &self.pool,
                        )
                    } else {
                        execute_stream(
                            &self.planned,
                            &self.catalog,
                            &self.dev,
                            self.layer,
                            &self.pool,
                        )
                    };
                    match run {
                        Ok(mut run) => {
                            self.profile = run.profile.take();
                            self.adapted = run.adapted.take();
                            self.state = State::Open {
                                run: Box::new(run),
                                cursor: 0,
                            };
                        }
                        Err(e) => {
                            self.state = State::Done {
                                io: IoStats::default(),
                                secs: 0.0,
                                ran: false,
                            };
                            return Err(DbError::Exec(e));
                        }
                    }
                }
                State::Open { run, cursor } => {
                    let remaining = match self.limit {
                        Some(l) => (l.saturating_sub(self.delivered)) as usize,
                        None => usize::MAX,
                    };
                    let want = self.batch_rows.min(remaining);
                    let rows = if want == 0 {
                        None
                    } else {
                        run.result.rows(*cursor, want)
                    };
                    match rows {
                        Some(out) => {
                            *cursor += out.len();
                            self.delivered += out.len() as u64;
                            self.batches += 1;
                            let batch = RowBatch {
                                columns: self.columns.clone(),
                                rows: project_rows(&out, &self.projection),
                            };
                            return Ok(Some(batch));
                        }
                        None => {
                            self.state = State::Done {
                                io: run.stats,
                                secs: run.secs,
                                ran: true,
                            };
                            return Ok(None);
                        }
                    }
                }
                State::Done { .. } => return Ok(None),
            }
        }
    }

    /// Drains every remaining batch, returning the total row count.
    ///
    /// # Errors
    /// Propagates the first execution error.
    pub fn drain(&mut self) -> Result<u64, DbError> {
        while self.next_batch()?.is_some() {}
        Ok(self.delivered)
    }

    /// Measured traffic and delivery counts — `Some` once the stream is
    /// exhausted.
    pub fn stats(&self) -> Option<QueryStats> {
        match &self.state {
            State::Done { io, secs, .. } => Some(QueryStats {
                io: *io,
                secs: *secs,
                elapsed_secs: self.wall_ns as f64 / 1e9,
                rows: self.delivered,
                batches: self.batches,
            }),
            _ => None,
        }
    }

    /// The span-tree profile of this query's execution — `Some` once the
    /// plan ran (first pull) with profiling enabled.
    pub fn profile(&self) -> Option<&SpanNode> {
        self.profile.as_ref()
    }

    /// Mid-run re-planning evidence — `Some` once the plan ran and the
    /// first materialized cardinality drifted past the threshold.
    pub fn adapted(&self) -> Option<&AdaptedPlan> {
        self.adapted.as_ref()
    }

    /// The explain report: chosen algorithms, knobs, per-node candidate
    /// tables, the plan tree, predicted traffic — and, once the stream
    /// has been drained, predicted-vs-measured concordance.
    pub fn explain(&self) -> String {
        let mut out = format!(
            "knobs: λ = {}, M = {:.0} buffers, threads = {}, layer = {}\n",
            self.planned.lambda,
            self.planned.m_buffers,
            self.planned.threads,
            self.layer.label(),
        );
        out.push_str(&render_choices(&self.planned));
        out.push_str(&render_plan(&self.planned));
        if let State::Done { io, ran: true, .. } = &self.state {
            out.push_str(&render_concordance_stats(
                &self.planned,
                io,
                &self.dev.config().latency,
            ));
        }
        out
    }

    /// The `EXPLAIN ANALYZE` report: the explain body followed by the
    /// plan annotated per node with measured rows, traffic, simulated
    /// time, and host wall time. Meaningful once the stream has been
    /// drained (before that there is no profile to annotate from).
    pub fn analyze(&self) -> String {
        let mut out = self.explain();
        if let Some(a) = &self.adapted {
            out.push_str(&format!(
                "re-planned mid-run: first materialization produced {} rows \
                 (estimate ~{:.0}); remaining joins re-enumerated\n",
                a.observed_rows, a.estimated_rows
            ));
        }
        match (&self.profile, &self.adapted) {
            (Some(p), Some(a)) => {
                out.push_str(&render_analyze_plan(&a.plan, p, &self.dev.config().latency));
            }
            (Some(p), None) => {
                out.push_str(&render_analyze(
                    &self.planned,
                    p,
                    &self.dev.config().latency,
                ));
            }
            (None, _) => out.push_str("no profile recorded (SET profile = on to enable)\n"),
        }
        out
    }
}

impl Iterator for ResultStream {
    type Item = Result<RowBatch, DbError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_batch().transpose()
    }
}

/// Expands each row into the shape's full column values, then projects.
fn project_rows(out: &OutputRows, projection: &[usize]) -> Vec<Vec<u64>> {
    out.wide_rows()
        .into_iter()
        .map(|row| projection.iter().map(|&i| row[i]).collect())
        .collect()
}

// `shape` drives header rendering for empty results in clients; keep it
// reachable even though projection already fixed the column names.
impl ResultStream {
    /// The row shape of the (unprojected) result.
    pub fn shape(&self) -> &RowShape {
        &self.shape
    }
}
