//! Sessions: per-connection knobs plus the statement dispatcher.

use crate::database::{Database, DdlError};
use crate::error::{DbError, SqlError};
use crate::metrics::MetricsSnapshot;
use crate::sql::ast::SetValue;
use crate::sql::{bind, parse, Select, Statement};
use crate::stream::{ResultStream, StreamHooks};
use pmem_sim::{BufferPool, SpanNode, Storable};
use std::sync::{Arc, Mutex};
use wisconsin::WisconsinRecord;
use write_limited::parallel::resolve_threads;

/// Upper bound on a session's degree of parallelism: the worker pool
/// spawns scoped threads per query, so an absurd `SET threads` must be
/// rejected up front instead of fanning out unbounded workers.
pub const MAX_THREADS: usize = 256;

/// Per-session knobs. Sessions start from the database defaults and can
/// retune themselves with `SET` statements or the typed setters.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionConfig {
    /// Explicit degree of parallelism; `None` falls back to the shared
    /// resolver chain (CLI default, then `WL_THREADS`, then serial).
    pub threads: Option<usize>,
    /// DRAM budget in bytes (the paper's `M`).
    pub dram_bytes: usize,
    /// Result batch size in rows.
    pub batch_rows: usize,
    /// Planning write/read cost ratio override; `None` plans at the
    /// device's measured λ.
    pub lambda: Option<f64>,
    /// Print host wall time in client footers (`SET timing = on`). Off
    /// by default so scripted sessions stay byte-stable.
    pub timing: bool,
    /// Record a span-tree profile for every query (`SET profile = off`
    /// to disable). Profiling never touches the simulated counters, so
    /// it is cheap enough to leave on.
    pub profile: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            threads: None,
            dram_bytes: 500 * WisconsinRecord::SIZE,
            batch_rows: 512,
            lambda: None,
            timing: false,
            profile: true,
        }
    }
}

/// What one statement produced.
#[derive(Debug)]
pub enum Response {
    /// `CREATE TABLE` succeeded.
    Created {
        /// New table name.
        table: String,
        /// Rows loaded.
        rows: u64,
    },
    /// `INSERT` succeeded.
    Inserted {
        /// Target table name.
        table: String,
        /// Rows inserted.
        rows: u64,
    },
    /// `DROP TABLE` succeeded.
    Dropped {
        /// Dropped table name.
        table: String,
    },
    /// `CHECKPOINT` succeeded.
    Checkpointed {
        /// Tables materialized.
        tables: u64,
        /// Rows materialized.
        rows: u64,
    },
    /// `SHOW TABLES` listing as `(name, rows)`.
    Tables(Vec<(String, u64)>),
    /// `SHOW METRICS` — the engine-wide counter registry.
    Metrics(MetricsSnapshot),
    /// `SET` applied.
    Set {
        /// Knob name.
        knob: String,
        /// New value, rendered (`"4"`, `"on"`).
        value: String,
    },
    /// A `SELECT`: pull the stream for rows.
    Rows(ResultStream),
    /// An `EXPLAIN SELECT`: drain the stream (discarding rows), then
    /// render [`ResultStream::explain`] for the full report.
    Explain(ResultStream),
    /// An `EXPLAIN ANALYZE SELECT`: drain the stream (discarding rows),
    /// then render [`ResultStream::analyze`] for the annotated plan.
    ExplainAnalyze(ResultStream),
}

/// A connection to a [`Database`] with its own knobs.
#[derive(Debug)]
pub struct Session<'db> {
    db: &'db Database,
    config: SessionConfig,
    /// Where the session's streams deposit their span-tree profile when
    /// they finish; [`Session::last_profile`] reads it back.
    profile_sink: Arc<Mutex<Option<SpanNode>>>,
}

impl<'db> Session<'db> {
    pub(crate) fn new(db: &'db Database, config: SessionConfig) -> Self {
        Self {
            db,
            config,
            profile_sink: Arc::new(Mutex::new(None)),
        }
    }

    /// Current knob settings.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The span-tree profile of the most recently *completed* query in
    /// this session (streams deposit it when they finish draining), or
    /// `None` before the first profiled run.
    pub fn last_profile(&self) -> Option<SpanNode> {
        self.profile_sink.lock().expect("profile sink").clone()
    }

    /// Sets the degree of parallelism (explicit: outranks `WL_THREADS`),
    /// clamped to `1..=`[`MAX_THREADS`].
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = Some(threads.clamp(1, MAX_THREADS));
    }

    /// Sets the DRAM budget in bytes.
    pub fn set_dram_budget(&mut self, bytes: usize) {
        self.config.dram_bytes = bytes.max(1);
    }

    /// Sets the result batch size in rows.
    pub fn set_batch_rows(&mut self, rows: usize) {
        self.config.batch_rows = rows.max(1);
    }

    /// Sets the planning λ override.
    pub fn set_lambda(&mut self, lambda: f64) {
        self.config.lambda = Some(lambda.max(1.0));
    }

    /// Parses and executes one statement.
    ///
    /// # Errors
    /// Returns [`DbError`] for SQL front-end errors (span-carrying),
    /// planning failures, or execution failures.
    pub fn execute(&mut self, sql: &str) -> Result<Response, DbError> {
        match parse(sql)? {
            Statement::Create {
                table,
                rows,
                fanout,
                seed,
                skew,
            } => {
                let loaded = self
                    .db
                    .create_wisconsin_skewed(&table.name, rows, fanout, seed, skew)
                    .map_err(|e| ddl_error(e, table.span))?;
                Ok(Response::Created {
                    table: table.name,
                    rows: loaded,
                })
            }
            Statement::Insert { table, keys } => {
                let inserted = self
                    .db
                    .insert_keys(&table.name, &keys)
                    .map_err(|e| ddl_error(e, table.span))?;
                Ok(Response::Inserted {
                    table: table.name,
                    rows: inserted,
                })
            }
            Statement::Drop { table } => match self.db.drop_table(&table.name) {
                Ok(true) => Ok(Response::Dropped { table: table.name }),
                Ok(false) => Err(SqlError::new(
                    format!("unknown table \"{}\"", table.name),
                    table.span,
                )
                .into()),
                Err(e) => Err(ddl_error(e, table.span)),
            },
            Statement::Checkpoint => {
                let (tables, rows, _bytes) = self
                    .db
                    .checkpoint()
                    .map_err(|e| ddl_error(e, crate::error::Span::new(0, sql.len())))?;
                Ok(Response::Checkpointed { tables, rows })
            }
            Statement::ShowTables => Ok(Response::Tables(self.db.tables())),
            Statement::ShowMetrics => Ok(Response::Metrics(self.db.metrics_snapshot())),
            Statement::Set {
                name,
                value,
                value_span,
            } => {
                // Boolean knobs take on/off; everything else an integer.
                match name.name.as_str() {
                    "timing" | "profile" => {
                        let SetValue::Flag(flag) = value else {
                            return Err(SqlError::new(
                                format!("knob \"{}\" takes on or off", name.name),
                                value_span,
                            )
                            .into());
                        };
                        if name.name == "timing" {
                            self.config.timing = flag;
                        } else {
                            self.config.profile = flag;
                        }
                        return Ok(Response::Set {
                            knob: name.name,
                            value: value.describe(),
                        });
                    }
                    "threads" | "batch" | "lambda" | "memory" => {}
                    other => {
                        return Err(SqlError::new(
                            format!(
                                "unknown knob \"{other}\" (supported: threads, batch, lambda, \
                                 memory, timing, profile)"
                            ),
                            name.span,
                        )
                        .into())
                    }
                }
                let SetValue::Num(value) = value else {
                    return Err(SqlError::new(
                        format!("knob \"{}\" requires an integer value", name.name),
                        value_span,
                    )
                    .into());
                };
                if value == 0 {
                    return Err(SqlError::new(
                        format!("knob \"{}\" requires a positive value, got 0", name.name),
                        value_span,
                    )
                    .into());
                }
                match name.name.as_str() {
                    "threads" => {
                        if value > MAX_THREADS as u64 {
                            return Err(SqlError::new(
                                format!("threads must be between 1 and {MAX_THREADS}, got {value}"),
                                value_span,
                            )
                            .into());
                        }
                        self.set_threads(value as usize);
                    }
                    "batch" => self.set_batch_rows(value as usize),
                    "lambda" => self.set_lambda(value as f64),
                    "memory" => {
                        let bytes = usize::try_from(value)
                            .ok()
                            .and_then(|v| v.checked_mul(WisconsinRecord::SIZE))
                            .ok_or_else(|| {
                                SqlError::new(
                                    format!("memory budget of {value} records is out of range"),
                                    name.span,
                                )
                            })?;
                        self.set_dram_budget(bytes);
                    }
                    _ => unreachable!("knob names vetted above"),
                }
                Ok(Response::Set {
                    knob: name.name,
                    value: value.to_string(),
                })
            }
            Statement::Select(select) => Ok(Response::Rows(self.plan_select(&select, false)?)),
            Statement::Explain(select) => Ok(Response::Explain(self.plan_select(&select, false)?)),
            // EXPLAIN ANALYZE needs the span tree regardless of the
            // session's profile knob.
            Statement::ExplainAnalyze(select) => {
                Ok(Response::ExplainAnalyze(self.plan_select(&select, true)?))
            }
        }
    }

    /// Parses a `SELECT` and returns its result stream without running
    /// it (execution happens on the first batch pull).
    ///
    /// # Errors
    /// Returns [`DbError`] for non-`SELECT` statements, SQL errors, or
    /// planning failures.
    pub fn query(&self, sql: &str) -> Result<ResultStream, DbError> {
        match parse(sql)? {
            Statement::Select(select) => self.plan_select(&select, false),
            other => Err(SqlError::new(
                format!(
                    "query() accepts SELECT only; use execute() for {}",
                    other.describe().lines().next().unwrap_or_default()
                ),
                crate::error::Span::new(0, sql.len()),
            )
            .into()),
        }
    }

    fn plan_select(&self, select: &Select, force_profile: bool) -> Result<ResultStream, DbError> {
        let catalog = self.db.catalog();
        let bound = bind(select, &catalog)?;
        let pool = BufferPool::new(self.config.dram_bytes);
        let dev = self.db.device();
        let lambda = self.config.lambda.unwrap_or_else(|| dev.lambda());
        let threads = resolve_threads(self.config.threads);
        let planner = planner::Planner::with_config(
            lambda,
            pool.budget_buffers() as f64,
            self.db.layer(),
            dev.config(),
        )
        .with_threads(threads);
        let planned = planner.plan(&bound.logical, &catalog)?;
        Ok(ResultStream::new(
            planned,
            &bound,
            catalog,
            dev.clone(),
            self.db.layer(),
            pool,
            self.config.batch_rows,
            StreamHooks {
                profile: self.config.profile || force_profile,
                sink: Arc::clone(&self.profile_sink),
                metrics: Arc::clone(self.db.metrics()),
            },
        ))
    }
}

/// Maps a [`DdlError`] onto the session's error surface: storage
/// failures pass through typed (path + offset intact), everything else
/// becomes a span-carrying SQL diagnostic.
fn ddl_error(err: DdlError, span: crate::error::Span) -> DbError {
    match err {
        DdlError::Storage(e) => DbError::Storage(e),
        other => SqlError::new(other.to_string(), span).into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let db = Database::builder().dram_records(200).batch_rows(16).build();
        db.create_wisconsin("t", 500, 1, 3).expect("fresh");
        db.create_wisconsin("v", 500, 4, 3).expect("fresh");
        db
    }

    #[test]
    fn select_streams_in_batches_and_reports_stats() {
        let db = db();
        let mut s = db.session();
        let Response::Rows(mut stream) = s
            .execute("SELECT * FROM t WHERE key < 100 ORDER BY key")
            .expect("executes")
        else {
            panic!("expected rows");
        };
        assert_eq!(stream.columns(), ["key", "payload"]);
        assert!(
            stream.stats().is_none(),
            "nothing ran before the first pull"
        );
        let mut rows = Vec::new();
        let mut batches = 0;
        while let Some(batch) = stream.next_batch().expect("streams") {
            assert!(batch.rows.len() <= 16);
            batches += 1;
            rows.extend(batch.rows);
        }
        assert_eq!(batches, 7, "100 rows in 16-row batches");
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[0][0], 0, "ordered by key");
        assert_eq!(rows[99][0], 99);
        let stats = stream.stats().expect("drained");
        assert_eq!(stats.rows, 100);
        assert!(stats.io.cl_reads > 0 && stats.secs > 0.0);
    }

    #[test]
    fn join_group_order_query_round_trips() {
        let db = db();
        let mut s = db.session();
        s.set_batch_rows(64);
        let mut stream = s
            .query(
                "SELECT * FROM t JOIN v ON t.key = v.key WHERE t.key < 50 \
                 GROUP BY key ORDER BY key",
            )
            .expect("plans");
        let mut rows = Vec::new();
        while let Some(b) = stream.next_batch().expect("streams") {
            rows.extend(b.rows);
        }
        // 50 surviving keys, fanout 4 → count 4 per group.
        assert_eq!(rows.len(), 50);
        assert!(rows.iter().all(|r| r[1] == 4), "count column");
        assert!(rows.windows(2).all(|w| w[0][0] < w[1][0]), "ordered keys");
    }

    #[test]
    fn limit_caps_delivery() {
        let db = db();
        let s = db.session();
        let mut stream = s
            .query("SELECT * FROM t ORDER BY key LIMIT 5")
            .expect("plans");
        let total = stream.drain().expect("drains");
        assert_eq!(total, 5);
        assert_eq!(stream.stats().expect("done").rows, 5);
    }

    #[test]
    fn explain_reports_algorithms_and_concordance() {
        let db = db();
        let mut s = db.session();
        let Response::Explain(mut stream) = s
            .execute("EXPLAIN SELECT * FROM t JOIN v ON t.key = v.key GROUP BY key")
            .expect("executes")
        else {
            panic!("expected explain");
        };
        let before = stream.explain();
        assert!(before.contains("knobs: λ = 15"), "{before}");
        assert!(before.contains("chosen plan:"), "{before}");
        assert!(before.contains("join"), "{before}");
        assert!(!before.contains("measured"), "no run yet");
        stream.drain().expect("runs");
        let after = stream.explain();
        assert!(after.contains("predicted vs measured"), "{after}");
    }

    #[test]
    fn session_knobs_steer_planning() {
        let db = db();
        let mut s = db.session();
        s.execute("SET lambda = 1").expect("sets");
        s.execute("SET threads = 4").expect("sets");
        s.execute("SET memory = 100").expect("sets");
        let stream = s.query("SELECT * FROM t ORDER BY key").expect("plans");
        assert_eq!(stream.planned().lambda, 1.0);
        assert_eq!(stream.planned().threads, 4);
        assert_eq!(
            stream.planned().m_buffers,
            125.0,
            "100 records = 125 cachelines"
        );
        let err = s.execute("SET nope = 1").unwrap_err();
        let DbError::Sql(e) = err else {
            panic!("expected SQL error")
        };
        assert!(e.message.contains("unknown knob"));
    }

    #[test]
    fn set_threads_rejects_values_above_the_cap() {
        let db = db();
        let mut s = db.session();
        // The cap itself is fine; one past it errors with the value span.
        s.execute("SET threads = 256").expect("at the cap");
        assert_eq!(s.config().threads, Some(256));
        let sql = "SET threads = 1000";
        let DbError::Sql(e) = s.execute(sql).unwrap_err() else {
            panic!("expected SQL error")
        };
        assert!(
            e.message.contains("between 1 and 256"),
            "message: {}",
            e.message
        );
        assert_eq!(&sql[e.span.start..e.span.end], "1000", "caret on value");
        assert_eq!(s.config().threads, Some(256), "knob unchanged on error");
        // The typed setter clamps instead of erroring (no span to carry).
        s.set_threads(100_000);
        assert_eq!(s.config().threads, Some(MAX_THREADS));
    }

    #[test]
    fn explain_analyze_annotates_a_three_way_join() {
        let db = db();
        db.create_wisconsin("w", 500, 2, 5).expect("fresh");
        let mut s = db.session();
        let Response::ExplainAnalyze(mut stream) = s
            .execute(
                "EXPLAIN ANALYZE SELECT * FROM t JOIN v ON t.key = v.key \
                 JOIN w ON v.key = w.key ORDER BY key",
            )
            .expect("executes")
        else {
            panic!("expected explain analyze");
        };
        stream.drain().expect("runs");
        let report = stream.analyze();
        assert!(report.contains("analyzed plan"), "{report}");
        assert!(report.contains("scan t"), "{report}");
        assert!(report.contains("scan v"), "{report}");
        assert!(report.contains("scan w"), "{report}");
        assert!(report.contains("ms wall"), "{report}");
        assert!(report.contains("meas"), "{report}");
        assert!(!report.contains("not measured"), "{report}");
        // The profile covers the whole run and satisfies the sum
        // invariant.
        let profile = stream.profile().expect("profiled by default");
        profile.validate().expect("span sums hold");
        let stats = stream.stats().expect("drained");
        assert_eq!(profile.io.cl_reads, stats.io.cl_reads);
        assert_eq!(profile.io.cl_writes, stats.io.cl_writes);
    }

    #[test]
    fn misestimated_joins_replan_mid_run_and_the_report_says_so() {
        use wisconsin::WisconsinRecord;
        // Sketches off and key domains registered 20× too wide: the
        // uniform estimate of every pairwise join is an order of
        // magnitude under the truth, so the first materialization
        // drifts and the remaining subtree is re-enumerated.
        let db = Database::builder()
            .dram_records(300)
            .statistics(false)
            .build();
        let rep =
            |n: u64, k: u64| (0..n).map(move |i| WisconsinRecord::from_key(i % k).with_payload(i));
        db.register_table("s1", rep(400, 20), 400).expect("fresh");
        db.register_table("s2", rep(400, 20), 400).expect("fresh");
        db.register_table("u", (0..40).map(WisconsinRecord::from_key), 40)
            .expect("fresh");
        let mut s = db.session();
        let Response::ExplainAnalyze(mut stream) = s
            .execute(
                "EXPLAIN ANALYZE SELECT * FROM s1 JOIN s2 ON s1.key = s2.key \
                 JOIN u ON s2.key = u.key ORDER BY key",
            )
            .expect("executes")
        else {
            panic!("expected explain analyze");
        };
        stream.drain().expect("runs");
        let adapted = stream.adapted().expect("drift must fire");
        assert!(adapted.observed_rows as f64 > 2.0 * adapted.estimated_rows);
        let report = stream.analyze();
        assert!(report.contains("re-planned mid-run"), "{report}");
        assert!(report.contains("(re-planned)"), "{report}");
        assert!(!report.contains("~mid"), "{report}");
        assert!(!report.contains("not measured"), "{report}");
        let stats = stream.stats().expect("drained");
        assert_eq!(stats.rows, 20 * 20 * 20, "oracle rows survive re-planning");
    }

    #[test]
    fn profile_lands_in_the_session_and_respects_the_knob() {
        let db = db();
        let mut s = db.session();
        assert!(s.last_profile().is_none(), "nothing ran yet");
        let mut stream = s.query("SELECT * FROM t ORDER BY key").expect("plans");
        stream.drain().expect("runs");
        let profile = s.last_profile().expect("deposited on completion");
        profile.validate().expect("span sums hold");
        assert_eq!(profile.label, "query");
        // Turning the knob off stops recording (the old profile stays).
        s.execute("SET profile = off").expect("sets");
        assert!(!s.config().profile);
        let mut stream = s.query("SELECT * FROM t ORDER BY key").expect("plans");
        stream.drain().expect("runs");
        assert!(stream.profile().is_none(), "profiling disabled");
        // EXPLAIN ANALYZE overrides the knob.
        let Response::ExplainAnalyze(mut stream) = s
            .execute("EXPLAIN ANALYZE SELECT * FROM t ORDER BY key")
            .expect("executes")
        else {
            panic!("expected explain analyze");
        };
        stream.drain().expect("runs");
        assert!(stream.profile().is_some(), "forced despite profile = off");
    }

    #[test]
    fn metrics_registry_counts_queries_and_delivery() {
        let db = db();
        let before = db.metrics_snapshot();
        assert_eq!(before.queries, 0);
        let mut s = db.session();
        let Response::Rows(mut stream) = s
            .execute("SELECT * FROM t WHERE key < 100 ORDER BY key")
            .expect("executes")
        else {
            panic!("expected rows");
        };
        stream.drain().expect("runs");
        let after = db.metrics_snapshot();
        assert_eq!(after.queries, 1);
        assert_eq!(after.result_rows, 100);
        assert_eq!(after.result_batches, 7, "100 rows in 16-row batches");
        assert_eq!(after.result_bytes, 100 * 2 * 8, "two u64 columns per row");
        assert!(after.exec_wall_ns > 0);
        // An external sort (2000 rows, 200-record budget) exercises the
        // buffer pool, which shows up in the registry.
        let mut stream = s.query("SELECT * FROM v ORDER BY key").expect("plans");
        stream.drain().expect("runs");
        let after = db.metrics_snapshot();
        assert_eq!(after.queries, 2);
        assert!(after.pool_reservations > 0, "the sort reserved DRAM");
        assert!(after.pool_peak_bytes > 0);
        // SHOW METRICS surfaces the same snapshot through SQL.
        let Response::Metrics(shown) = s.execute("SHOW METRICS").expect("executes") else {
            panic!("expected metrics");
        };
        assert_eq!(shown.queries, 2);
        assert!(shown
            .rows()
            .iter()
            .any(|(n, v)| *n == "result_delivery_rows" && *v == 100 + 2000));
    }

    #[test]
    fn pool_exhaustion_is_counted_exactly_once_per_failed_attempt() {
        let db = db();
        let mut s = db.session();
        // 100-record budget; sorting the 2000-row v cannot lease the
        // full input, so each run makes exactly one refused attempt
        // before falling back to the largest grantable reservation.
        s.execute("SET memory = 100").expect("sets");
        let mut stream = s.query("SELECT * FROM v ORDER BY key").expect("plans");
        stream.drain().expect("runs");
        let one = db.metrics_snapshot().pool_exhausted;
        assert!(one >= 1, "the memory-constrained sort records a refusal");
        // An identical second run adds exactly the same count: refusals
        // are published eagerly at the failed attempt, not re-merged or
        // dropped at a later flush.
        let mut stream = s.query("SELECT * FROM v ORDER BY key").expect("plans");
        stream.drain().expect("runs");
        let two = db.metrics_snapshot().pool_exhausted;
        assert_eq!(two, 2 * one, "exactly once per failed attempt");
        // SHOW METRICS surfaces the same counter through SQL.
        let Response::Metrics(shown) = s.execute("SHOW METRICS").expect("executes") else {
            panic!("expected metrics");
        };
        assert_eq!(shown.pool_exhausted, two);
        assert!(shown
            .rows()
            .iter()
            .any(|(n, v)| *n == "pool_exhausted" && *v == two));
    }

    #[test]
    fn boolean_and_numeric_knobs_reject_mismatched_values() {
        let db = db();
        let mut s = db.session();
        let DbError::Sql(e) = s.execute("SET timing = 4").unwrap_err() else {
            panic!("expected SQL error")
        };
        assert!(e.message.contains("takes on or off"), "{}", e.message);
        let DbError::Sql(e) = s.execute("SET threads = on").unwrap_err() else {
            panic!("expected SQL error")
        };
        assert!(
            e.message.contains("requires an integer value"),
            "{}",
            e.message
        );
        s.execute("SET timing = on").expect("sets");
        assert!(s.config().timing);
        let mut stream = s.query("SELECT * FROM t LIMIT 1").expect("plans");
        stream.drain().expect("runs");
        let stats = stream.stats().expect("drained");
        assert!(stats.elapsed_secs > 0.0, "host wall time recorded");
    }

    #[test]
    fn insert_and_checkpoint_through_sql() {
        let db = db();
        let mut s = db.session();
        let Response::Inserted { table, rows } = s
            .execute("INSERT INTO t VALUES (500), (501)")
            .expect("inserts")
        else {
            panic!("expected inserted");
        };
        assert_eq!(table, "t");
        assert_eq!(rows, 2);
        let mut stream = s.query("SELECT * FROM t WHERE key >= 500").expect("plans");
        assert_eq!(stream.drain().expect("runs"), 2, "new keys visible");
        // Unknown target carries the table's span.
        let sql = "INSERT INTO missing VALUES (1)";
        let DbError::Sql(e) = s.execute(sql).unwrap_err() else {
            panic!("expected SQL error")
        };
        assert_eq!(&sql[e.span.start..e.span.end], "missing");
        // CHECKPOINT needs a durable database; this one is in-memory.
        let DbError::Sql(e) = s.execute("CHECKPOINT").unwrap_err() else {
            panic!("expected SQL error")
        };
        assert!(e.message.contains("not durable"), "{}", e.message);
    }

    #[test]
    fn ddl_errors_carry_spans() {
        let db = db();
        let mut s = db.session();
        let sql = "DROP TABLE missing";
        let DbError::Sql(e) = s.execute(sql).unwrap_err() else {
            panic!("expected SQL error")
        };
        assert_eq!(&sql[e.span.start..e.span.end], "missing");
        let DbError::Sql(e) = s.execute("CREATE TABLE t AS WISCONSIN(10)").unwrap_err() else {
            panic!("expected SQL error")
        };
        assert!(e.message.contains("already exists"));
    }
}
