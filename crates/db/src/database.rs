//! The [`Database`] facade: one object owning the simulated device, the
//! persistence layer, the catalog of named tables, and the default
//! session knobs — the single entry point to the write-limited engine.

use crate::metrics::{EngineMetrics, MetricsSnapshot};
use crate::session::{Session, SessionConfig};
use planner::Catalog;
use pmem_sim::{DeviceConfig, LatencyProfile, LayerKind, PCollection, Pm, PmDevice};
use std::sync::{Arc, RwLock};
use wisconsin::WisconsinRecord;

/// A write-limited database: device + catalog + planner defaults.
///
/// Build one with [`Database::builder`], then open [`Session`]s to run
/// SQL. Tables live in persistent collections owned by the catalog
/// behind shared handles, so concurrent sessions and outstanding
/// [`crate::ResultStream`]s keep working across DDL.
///
/// ```
/// use wl_db::Database;
///
/// let db = Database::builder().dram_records(500).build();
/// let mut session = db.session();
/// session.execute("CREATE TABLE t AS WISCONSIN(2000)").unwrap();
/// let mut stream = session.query("SELECT * FROM t WHERE key < 3 ORDER BY key").unwrap();
/// let batch = stream.next_batch().unwrap().expect("rows");
/// assert_eq!(batch.rows.len(), 3);
/// ```
#[derive(Debug)]
pub struct Database {
    dev: Pm,
    layer: LayerKind,
    catalog: RwLock<Catalog>,
    defaults: SessionConfig,
    metrics: Arc<EngineMetrics>,
}

impl Database {
    /// Starts a builder with the paper-default device (PCM λ = 15,
    /// blocked-memory layer).
    pub fn builder() -> DatabaseBuilder {
        DatabaseBuilder::default()
    }

    /// The simulated device every table and query is charged to.
    pub fn device(&self) -> &Pm {
        &self.dev
    }

    /// The persistence layer intermediates and tables are written
    /// through.
    pub fn layer(&self) -> LayerKind {
        self.layer
    }

    /// Default knobs new sessions start from.
    pub fn defaults(&self) -> &SessionConfig {
        &self.defaults
    }

    /// Opens a session with the database's default knobs.
    pub fn session(&self) -> Session<'_> {
        Session::new(self, self.defaults.clone())
    }

    /// A catalog snapshot (cheap: shared table handles).
    pub fn catalog(&self) -> Catalog {
        self.catalog.read().expect("catalog lock").clone()
    }

    /// The engine-wide metrics registry streams fold their counters into.
    pub(crate) fn metrics(&self) -> &Arc<EngineMetrics> {
        &self.metrics
    }

    /// A point-in-time copy of the engine-wide counters — the
    /// programmatic face of `SHOW METRICS`.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Creates a Wisconsin table: `rows` distinct keys × `fanout`
    /// records per key (permuted by `seed`), loaded uncounted like the
    /// paper's experiment inputs. `rows = 0` creates a legitimately
    /// empty table (queries over it yield empty results). Returns the
    /// total row count.
    ///
    /// # Errors
    /// Returns the table name back when it already exists.
    pub fn create_wisconsin(
        &self,
        name: &str,
        rows: u64,
        fanout: u64,
        seed: u64,
    ) -> Result<u64, String> {
        assert!(fanout > 0, "degenerate Wisconsin fanout");
        let records = if rows == 0 {
            Vec::new()
        } else if fanout == 1 {
            wisconsin::sort_input(rows, wisconsin::KeyOrder::Random, seed)
        } else {
            wisconsin::join_right_input(rows, fanout, seed)
        };
        self.register_table(name, records, rows)
    }

    /// Registers a pre-built table (staged uncounted, like experiment
    /// inputs). `key_domain` is the size of the uniform key domain the
    /// planner estimates selectivities against. Returns the row count.
    ///
    /// # Errors
    /// Returns the table name back when it already exists.
    pub fn register_table(
        &self,
        name: &str,
        records: impl IntoIterator<Item = WisconsinRecord>,
        key_domain: u64,
    ) -> Result<u64, String> {
        let mut catalog = self.catalog.write().expect("catalog lock");
        if catalog.stats(name).is_some() {
            return Err(name.to_string());
        }
        let col = Arc::new(PCollection::from_records_uncounted(
            &self.dev, self.layer, name, records,
        ));
        let rows = col.len() as u64;
        catalog.add_table(name, col, key_domain);
        Ok(rows)
    }

    /// Drops a table; returns whether it existed. Outstanding streams
    /// over the table keep their shared handle.
    pub fn drop_table(&self, name: &str) -> bool {
        self.catalog.write().expect("catalog lock").remove(name)
    }

    /// Registered tables as `(name, rows)`, sorted by name.
    pub fn tables(&self) -> Vec<(String, u64)> {
        let catalog = self.catalog.read().expect("catalog lock");
        catalog
            .names()
            .into_iter()
            .map(|n| {
                let rows = catalog.stats(n).map_or(0, |s| s.rows);
                (n.to_string(), rows)
            })
            .collect()
    }
}

/// Builder-style configuration of a [`Database`].
#[derive(Clone, Debug)]
pub struct DatabaseBuilder {
    config: DeviceConfig,
    layer: LayerKind,
    defaults: SessionConfig,
}

impl Default for DatabaseBuilder {
    fn default() -> Self {
        Self {
            config: DeviceConfig::paper_default(),
            layer: LayerKind::BlockedMemory,
            defaults: SessionConfig::default(),
        }
    }
}

impl DatabaseBuilder {
    /// Uses an explicit device configuration.
    #[must_use]
    pub fn device(mut self, config: DeviceConfig) -> Self {
        self.config = config;
        self
    }

    /// Targets a medium with the given write/read cost ratio λ (10 ns
    /// reads, `10·λ` ns writes).
    #[must_use]
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.config = self
            .config
            .with_latency(LatencyProfile::with_lambda(10.0, lambda));
        self
    }

    /// Persistence layer for tables and intermediates.
    #[must_use]
    pub fn layer(mut self, layer: LayerKind) -> Self {
        self.layer = layer;
        self
    }

    /// Default per-session DRAM budget in bytes.
    #[must_use]
    pub fn dram_budget(mut self, bytes: usize) -> Self {
        self.defaults.dram_bytes = bytes.max(1);
        self
    }

    /// Default per-session DRAM budget in 80-byte Wisconsin records (the
    /// paper's `M`).
    #[must_use]
    pub fn dram_records(self, records: usize) -> Self {
        self.dram_budget(records.saturating_mul(WisconsinRecord::SIZE))
    }

    /// Default degree of parallelism. Explicit here, so it outranks the
    /// `WL_THREADS` environment variable through the shared resolver.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.defaults.threads = Some(threads.max(1));
        self
    }

    /// Default result batch size in rows.
    #[must_use]
    pub fn batch_rows(mut self, rows: usize) -> Self {
        self.defaults.batch_rows = rows.max(1);
        self
    }

    /// Builds the database.
    pub fn build(self) -> Database {
        Database {
            dev: PmDevice::new(self.config),
            layer: self.layer,
            catalog: RwLock::new(Catalog::new()),
            defaults: self.defaults,
            metrics: Arc::new(EngineMetrics::default()),
        }
    }
}

// `Storable` gives records their serialized size; used by
// `dram_records`.
use pmem_sim::Storable;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_table_lifecycle() {
        let db = Database::builder().lambda(8.0).dram_records(200).build();
        assert_eq!(db.device().lambda(), 8.0);
        assert_eq!(db.create_wisconsin("t", 100, 1, 1).expect("fresh"), 100);
        assert_eq!(db.create_wisconsin("v", 100, 3, 1).expect("fresh"), 300);
        assert_eq!(
            db.tables(),
            vec![("t".to_string(), 100), ("v".to_string(), 300)]
        );
        assert_eq!(db.create_wisconsin("t", 5, 1, 1).unwrap_err(), "t");
        assert!(db.drop_table("t"));
        assert!(!db.drop_table("t"));
    }

    #[test]
    fn catalog_snapshots_survive_drops() {
        let db = Database::builder().build();
        db.create_wisconsin("t", 50, 1, 9).expect("fresh");
        let snapshot = db.catalog();
        assert!(db.drop_table("t"));
        assert!(snapshot.data("t").is_some(), "snapshot keeps the handle");
        assert!(db.catalog().data("t").is_none());
    }
}
