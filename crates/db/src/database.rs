//! The [`Database`] facade: one object owning the simulated device, the
//! persistence layer, the catalog of named tables, and the default
//! session knobs — the single entry point to the write-limited engine.
//!
//! Built with a path ([`DatabaseBuilder::open`] / [`Database::reopen`]),
//! the database is *durable*: every SQL-visible DDL statement (`CREATE
//! TABLE … AS WISCONSIN`, `INSERT`, `DROP TABLE`) appends a logical
//! record to a write-ahead log and fsyncs it **before** the catalog
//! changes, and reopening the same path replays the log over the last
//! checkpoint — recovering exactly the acknowledged statements, even
//! after a kill mid-write.

use crate::durable::{
    read_checkpoint, write_checkpoint, CheckpointData, CheckpointTable, RecoveryReport,
};
use crate::error::StorageError;
use crate::metrics::{EngineMetrics, MetricsSnapshot};
use crate::session::{Session, SessionConfig};
use crate::wal::{read_wal, Wal, WalRecord, WAL_FILE};
use planner::Catalog;
use pmem_sim::{DeviceConfig, LatencyProfile, LayerKind, PCollection, Pm, PmDevice};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};
use wisconsin::WisconsinRecord;
use write_limited::stats::TableStatistics;

/// Sampling seed the ingest-side statistics sketches are built with —
/// fixed so the same data always yields the same sketch.
const STATS_SEED: u64 = 0x57A7;

/// A DDL statement failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DdlError {
    /// `CREATE` target already exists (carries the name).
    Duplicate(String),
    /// `INSERT`/`DROP` target does not exist (carries the name).
    Unknown(String),
    /// The statement requires a durable database (opened with a path).
    NotDurable,
    /// The WAL append or checkpoint write failed; the statement was NOT
    /// applied (write-ahead discipline: no log record, no state change).
    Storage(StorageError),
}

impl std::fmt::Display for DdlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DdlError::Duplicate(name) => write!(f, "table \"{name}\" already exists"),
            DdlError::Unknown(name) => write!(f, "unknown table \"{name}\""),
            DdlError::NotDurable => {
                write!(f, "database is not durable (opened without a path)")
            }
            DdlError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DdlError {}

impl From<StorageError> for DdlError {
    fn from(e: StorageError) -> Self {
        DdlError::Storage(e)
    }
}

/// Durable-side state: the database directory and the open log.
#[derive(Debug)]
struct DurableState {
    dir: PathBuf,
    wal: Wal,
}

/// A write-limited database: device + catalog + planner defaults.
///
/// Build one with [`Database::builder`], then open [`Session`]s to run
/// SQL. Tables live in persistent collections owned by the catalog
/// behind shared handles, so concurrent sessions and outstanding
/// [`crate::ResultStream`]s keep working across DDL.
///
/// ```
/// use wl_db::Database;
///
/// let db = Database::builder().dram_records(500).build();
/// let mut session = db.session();
/// session.execute("CREATE TABLE t AS WISCONSIN(2000)").unwrap();
/// let mut stream = session.query("SELECT * FROM t WHERE key < 3 ORDER BY key").unwrap();
/// let batch = stream.next_batch().unwrap().expect("rows");
/// assert_eq!(batch.rows.len(), 3);
/// ```
#[derive(Debug)]
pub struct Database {
    dev: Pm,
    layer: LayerKind,
    catalog: RwLock<Catalog>,
    defaults: SessionConfig,
    /// Build per-table key-frequency sketches at table install.
    statistics: bool,
    metrics: Arc<EngineMetrics>,
    /// WAL + directory when opened with a path; `None` = in-memory only.
    durable: Option<Mutex<DurableState>>,
    /// What `open`/`reopen` found on disk; `None` for in-memory builds.
    recovery: Option<RecoveryReport>,
}

impl Database {
    /// Starts a builder with the paper-default device (PCM λ = 15,
    /// blocked-memory layer).
    pub fn builder() -> DatabaseBuilder {
        DatabaseBuilder::default()
    }

    /// Opens (or initializes) a durable database at `path` with default
    /// knobs. Equivalent to `Database::builder().open(path)`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        Self::builder().open(path)
    }

    /// Reopens a durable database directory, running crash recovery:
    /// load the checkpoint, replay acknowledged WAL records past it,
    /// drop any torn tail, re-checkpoint. An alias of [`Database::open`]
    /// named for what it does after a crash.
    pub fn reopen(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        Self::open(path)
    }

    /// The simulated device every table and query is charged to.
    pub fn device(&self) -> &Pm {
        &self.dev
    }

    /// The persistence layer intermediates and tables are written
    /// through.
    pub fn layer(&self) -> LayerKind {
        self.layer
    }

    /// Default knobs new sessions start from.
    pub fn defaults(&self) -> &SessionConfig {
        &self.defaults
    }

    /// Opens a session with the database's default knobs.
    pub fn session(&self) -> Session<'_> {
        Session::new(self, self.defaults.clone())
    }

    /// A catalog snapshot (cheap: shared table handles).
    pub fn catalog(&self) -> Catalog {
        self.catalog
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The engine-wide metrics registry streams fold their counters into.
    pub(crate) fn metrics(&self) -> &Arc<EngineMetrics> {
        &self.metrics
    }

    /// A point-in-time copy of the engine-wide counters — the
    /// programmatic face of `SHOW METRICS`.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Creates a Wisconsin table: `rows` distinct keys × `fanout`
    /// records per key (permuted by `seed`), loaded uncounted like the
    /// paper's experiment inputs. `rows = 0` creates a legitimately
    /// empty table (queries over it yield empty results). Returns the
    /// total row count.
    ///
    /// On a durable database the generator parameters are WAL-logged
    /// and fsynced before the table appears (the generator is
    /// deterministic, so replay regenerates the table exactly).
    pub fn create_wisconsin(
        &self,
        name: &str,
        rows: u64,
        fanout: u64,
        seed: u64,
    ) -> Result<u64, DdlError> {
        self.create_wisconsin_skewed(name, rows, fanout, seed, 0.0)
    }

    /// [`Database::create_wisconsin`] with a Zipf exponent on the key
    /// draw: `skew = 0` is the classic uniform generator; larger values
    /// concentrate the `rows × fanout` records on the low keys of the
    /// `rows`-wide domain. Deterministic in all four parameters.
    pub fn create_wisconsin_skewed(
        &self,
        name: &str,
        rows: u64,
        fanout: u64,
        seed: u64,
        skew: f64,
    ) -> Result<u64, DdlError> {
        let records = Self::generate_wisconsin(rows, fanout, seed, skew);
        let mut catalog = self.catalog.write().unwrap_or_else(|e| e.into_inner());
        if catalog.stats(name).is_some() {
            return Err(DdlError::Duplicate(name.to_string()));
        }
        self.log(WalRecord::Create {
            name: name.to_string(),
            rows,
            fanout,
            seed,
            skew,
        })?;
        Ok(self.install_table(&mut catalog, name, records, rows))
    }

    fn generate_wisconsin(rows: u64, fanout: u64, seed: u64, skew: f64) -> Vec<WisconsinRecord> {
        assert!(fanout > 0, "degenerate Wisconsin fanout");
        if rows == 0 {
            Vec::new()
        } else if skew > 0.0 {
            wisconsin::skewed_input(rows * fanout, fanout, skew, seed)
        } else if fanout == 1 {
            wisconsin::sort_input(rows, wisconsin::KeyOrder::Random, seed)
        } else {
            wisconsin::join_right_input(rows, fanout, seed)
        }
    }

    /// Builds the collection and puts it in the catalog; returns rows.
    /// When the statistics knob is on (the default), a key-frequency
    /// sketch is built from the loaded records and attached, so the
    /// planner sees real per-table skew instead of the uniform
    /// assumption.
    fn install_table(
        &self,
        catalog: &mut Catalog,
        name: &str,
        records: Vec<WisconsinRecord>,
        key_domain: u64,
    ) -> u64 {
        use wisconsin::Record as _;
        let statistics = self.statistics.then(|| {
            let keys: Vec<u64> = records.iter().map(WisconsinRecord::key).collect();
            Arc::new(TableStatistics::build(&keys, STATS_SEED))
        });
        let col = Arc::new(PCollection::from_records_uncounted(
            &self.dev, self.layer, name, records,
        ));
        let rows = col.len() as u64;
        match statistics {
            Some(s) => catalog.add_table_with_statistics(name, col, key_domain, s),
            None => catalog.add_table(name, col, key_domain),
        }
        rows
    }

    /// Registers a pre-built table (staged uncounted, like experiment
    /// inputs). `key_domain` is the size of the uniform key domain the
    /// planner estimates selectivities against. Returns the row count.
    ///
    /// Arbitrary records have no logical WAL representation, so this is
    /// **not** WAL-logged even on a durable database — it is covered by
    /// the next checkpoint only. The SQL surface never reaches it.
    pub fn register_table(
        &self,
        name: &str,
        records: impl IntoIterator<Item = WisconsinRecord>,
        key_domain: u64,
    ) -> Result<u64, DdlError> {
        let mut catalog = self.catalog.write().unwrap_or_else(|e| e.into_inner());
        if catalog.stats(name).is_some() {
            return Err(DdlError::Duplicate(name.to_string()));
        }
        Ok(self.install_table(
            &mut catalog,
            name,
            records.into_iter().collect(),
            key_domain,
        ))
    }

    /// Appends `keys` to a table as fresh Wisconsin records (all ten
    /// attributes derived from the key). Returns the rows inserted.
    /// WAL-logged (keys, in order) on a durable database.
    pub fn insert_keys(&self, table: &str, keys: &[u64]) -> Result<u64, DdlError> {
        let mut catalog = self.catalog.write().unwrap_or_else(|e| e.into_inner());
        let data = match catalog.data(table) {
            Some(d) => Arc::clone(d),
            None => return Err(DdlError::Unknown(table.to_string())),
        };
        let key_domain = catalog.stats(table).map_or(0, |s| s.key_domain);
        self.log(WalRecord::Insert {
            table: table.to_string(),
            keys: keys.to_vec(),
        })?;
        // Collections are append-only behind shared handles, so an
        // insert rebuilds the collection and swaps the catalog entry;
        // snapshots and outstanding streams keep the old version.
        let mut records = data.to_vec_uncounted();
        records.extend(keys.iter().copied().map(WisconsinRecord::from_key));
        let new_domain = keys
            .iter()
            .map(|k| k + 1)
            .max()
            .unwrap_or(0)
            .max(key_domain);
        self.install_table(&mut catalog, table, records, new_domain);
        Ok(keys.len() as u64)
    }

    /// Drops a table; returns whether it existed. Outstanding streams
    /// over the table keep their shared handle. WAL-logged on a durable
    /// database (only when the table exists — failed drops log nothing).
    pub fn drop_table(&self, name: &str) -> Result<bool, DdlError> {
        let mut catalog = self.catalog.write().unwrap_or_else(|e| e.into_inner());
        if catalog.stats(name).is_none() {
            return Ok(false);
        }
        self.log(WalRecord::Drop {
            name: name.to_string(),
        })?;
        Ok(catalog.remove(name))
    }

    /// Appends `record` to the WAL and fsyncs it (no-op when not
    /// durable). Called with the catalog write lock held, so the logged
    /// order and the applied order agree.
    fn log(&self, record: WalRecord) -> Result<(), DdlError> {
        let Some(durable) = &self.durable else {
            return Ok(());
        };
        let mut state = durable.lock().unwrap_or_else(|e| e.into_inner());
        let (_lsn, bytes) = state.wal.append(&record, &self.dev)?;
        self.metrics.note_wal_append(bytes);
        self.metrics.note_fsync();
        Ok(())
    }

    /// Whether the database was opened with a path (WAL + checkpoints).
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// What `open`/`reopen` found on disk (`None` for in-memory builds).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery
    }

    /// Materializes the full catalog into a fresh checkpoint and resets
    /// the WAL behind it. Returns `(tables, rows, checkpoint_bytes)`.
    pub fn checkpoint(&self) -> Result<(u64, u64, u64), DdlError> {
        let Some(durable) = &self.durable else {
            return Err(DdlError::NotDurable);
        };
        // Lock order everywhere: catalog before durable.
        let catalog = self.catalog.read().unwrap_or_else(|e| e.into_inner());
        let mut state = durable.lock().unwrap_or_else(|e| e.into_inner());
        let data = Self::snapshot_catalog(&catalog, state.wal.last_lsn());
        let tables = data.tables.len() as u64;
        let rows = data.total_rows();
        let bytes = write_checkpoint(&state.dir, &self.dev, &data)?;
        self.metrics.note_fsync();
        state.wal = Wal::create(&state.dir, &self.dev, data.last_lsn)?;
        self.metrics.note_fsync();
        Ok((tables, rows, bytes))
    }

    /// Every bound table's full contents, stamped with `last_lsn`.
    fn snapshot_catalog(catalog: &Catalog, last_lsn: u64) -> CheckpointData {
        let tables = catalog
            .bound_entries()
            .map(|(name, stats, data)| CheckpointTable {
                name: name.to_string(),
                key_domain: stats.key_domain,
                records: data.to_vec_uncounted(),
            })
            .collect();
        CheckpointData { last_lsn, tables }
    }

    /// Registered tables as `(name, rows)`, sorted by name.
    pub fn tables(&self) -> Vec<(String, u64)> {
        let catalog = self.catalog.read().unwrap_or_else(|e| e.into_inner());
        catalog
            .names()
            .into_iter()
            .map(|n| {
                let rows = catalog.stats(n).map_or(0, |s| s.rows);
                (n.to_string(), rows)
            })
            .collect()
    }
}

/// Builder-style configuration of a [`Database`].
#[derive(Clone, Debug)]
pub struct DatabaseBuilder {
    config: DeviceConfig,
    layer: LayerKind,
    defaults: SessionConfig,
    statistics: bool,
}

impl Default for DatabaseBuilder {
    fn default() -> Self {
        Self {
            config: DeviceConfig::paper_default(),
            layer: LayerKind::BlockedMemory,
            defaults: SessionConfig::default(),
            statistics: true,
        }
    }
}

impl DatabaseBuilder {
    /// Uses an explicit device configuration.
    #[must_use]
    pub fn device(mut self, config: DeviceConfig) -> Self {
        self.config = config;
        self
    }

    /// Targets a medium with the given write/read cost ratio λ (10 ns
    /// reads, `10·λ` ns writes).
    #[must_use]
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.config = self
            .config
            .with_latency(LatencyProfile::with_lambda(10.0, lambda));
        self
    }

    /// Persistence layer for tables and intermediates.
    #[must_use]
    pub fn layer(mut self, layer: LayerKind) -> Self {
        self.layer = layer;
        self
    }

    /// Default per-session DRAM budget in bytes.
    #[must_use]
    pub fn dram_budget(mut self, bytes: usize) -> Self {
        self.defaults.dram_bytes = bytes.max(1);
        self
    }

    /// Default per-session DRAM budget in 80-byte Wisconsin records (the
    /// paper's `M`).
    #[must_use]
    pub fn dram_records(self, records: usize) -> Self {
        self.dram_budget(records.saturating_mul(WisconsinRecord::SIZE))
    }

    /// Default degree of parallelism. Explicit here, so it outranks the
    /// `WL_THREADS` environment variable through the shared resolver.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.defaults.threads = Some(threads.max(1));
        self
    }

    /// Default result batch size in rows.
    #[must_use]
    pub fn batch_rows(mut self, rows: usize) -> Self {
        self.defaults.batch_rows = rows.max(1);
        self
    }

    /// Whether tables get key-frequency sketches at install (on by
    /// default). Turning this off restores the uniform-assumption
    /// planner: no skew-aware estimates, no cardinality-guided joins,
    /// and mid-plan re-planning only fires on the coarse row counts.
    #[must_use]
    pub fn statistics(mut self, on: bool) -> Self {
        self.statistics = on;
        self
    }

    /// Builds an in-memory database (no WAL, no checkpoints).
    pub fn build(self) -> Database {
        Database {
            dev: PmDevice::new(self.config),
            layer: self.layer,
            catalog: RwLock::new(Catalog::new()),
            defaults: self.defaults,
            statistics: self.statistics,
            metrics: Arc::new(EngineMetrics::default()),
            durable: None,
            recovery: None,
        }
    }

    /// Opens (or initializes) a durable database in the directory
    /// `path`, running crash recovery if the directory already holds
    /// one:
    ///
    /// 1. load `checkpoint.bin` (typed error if damaged — checkpoints
    ///    are published atomically, damage is real corruption),
    /// 2. replay every intact `wal.log` record past the checkpoint's
    ///    LSN, dropping at most a torn tail frame,
    /// 3. write a fresh checkpoint and reset the log — torn tails are
    ///    scrubbed by rewrite, never by truncating in place.
    ///
    /// The result is exactly the acknowledged statement prefix: a
    /// statement whose WAL record was fsynced survives, one whose
    /// record was cut does not — and the cut is detected, not guessed.
    pub fn open(self, path: impl AsRef<Path>) -> Result<Database, StorageError> {
        let dir = path.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StorageError::file(dir.display().to_string(), e.to_string()))?;
        let mut db = self.build();

        let checkpoint = read_checkpoint(&dir)?;
        let fresh = checkpoint.is_none() && !dir.join(WAL_FILE).exists();
        let mut report = RecoveryReport {
            fresh,
            ..Default::default()
        };
        let mut last_lsn = 0;
        if let Some(ckpt) = checkpoint {
            last_lsn = ckpt.last_lsn;
            let mut catalog = db.catalog.write().unwrap_or_else(|e| e.into_inner());
            for table in ckpt.tables {
                db.install_table(&mut catalog, &table.name, table.records, table.key_domain);
            }
        } else if !fresh {
            // A WAL without any checkpoint: initialization never
            // completed its first checkpoint, or the checkpoint was
            // deleted. Either way there is no base to replay onto.
            return Err(StorageError::file(
                dir.join("checkpoint.bin").display().to_string(),
                "WAL present but checkpoint missing",
            ));
        }

        let readout = read_wal(&dir.join(WAL_FILE))?;
        if readout.base_lsn > last_lsn {
            return Err(StorageError::file(
                dir.join(WAL_FILE).display().to_string(),
                format!(
                    "WAL starts after LSN {} but checkpoint covers only {} (log gap)",
                    readout.base_lsn, last_lsn
                ),
            ));
        }
        report.dropped_wal_bytes = readout.dropped_tail_bytes;
        for (i, record) in readout.records.iter().enumerate() {
            let lsn = readout.base_lsn + 1 + i as u64;
            if lsn <= last_lsn {
                continue; // already inside the checkpoint
            }
            db.replay(record, &dir, lsn)?;
            last_lsn = lsn;
            report.replayed_records += 1;
        }

        // Re-checkpoint: bounds future replay, scrubs any torn tail,
        // and leaves the directory clean for the next open.
        {
            let catalog = db.catalog.read().unwrap_or_else(|e| e.into_inner());
            let data = Database::snapshot_catalog(&catalog, last_lsn);
            report.tables = data.tables.len() as u64;
            report.rows = data.total_rows();
            write_checkpoint(&dir, &db.dev, &data)?;
            db.metrics.note_fsync();
        }
        let wal = Wal::create(&dir, &db.dev, last_lsn)?;
        db.metrics.note_fsync();
        if !fresh {
            db.metrics.note_recovery(report.replayed_records);
        }
        db.durable = Some(Mutex::new(DurableState { dir, wal }));
        db.recovery = Some(report);
        Ok(db)
    }
}

impl Database {
    /// Applies one replayed WAL record (no re-logging). Malformed
    /// replay — a create of an existing table, an insert into or drop
    /// of a missing one — means log and checkpoint disagree: typed
    /// corruption error, never a panic.
    fn replay(&self, record: &WalRecord, dir: &Path, lsn: u64) -> Result<(), StorageError> {
        let conflict = |what: String| {
            StorageError::file(
                dir.join(WAL_FILE).display().to_string(),
                format!("replay conflict at LSN {lsn}: {what}"),
            )
        };
        let mut catalog = self.catalog.write().unwrap_or_else(|e| e.into_inner());
        match record {
            WalRecord::Create {
                name,
                rows,
                fanout,
                seed,
                skew,
            } => {
                if catalog.stats(name).is_some() {
                    return Err(conflict(format!("table \"{name}\" already exists")));
                }
                let records = Self::generate_wisconsin(*rows, *fanout, *seed, *skew);
                self.install_table(&mut catalog, name, records, *rows);
            }
            WalRecord::Insert { table, keys } => {
                let data = match catalog.data(table) {
                    Some(d) => Arc::clone(d),
                    None => return Err(conflict(format!("insert into missing table \"{table}\""))),
                };
                let key_domain = catalog.stats(table).map_or(0, |s| s.key_domain);
                let mut records = data.to_vec_uncounted();
                records.extend(keys.iter().copied().map(WisconsinRecord::from_key));
                let new_domain = keys
                    .iter()
                    .map(|k| k + 1)
                    .max()
                    .unwrap_or(0)
                    .max(key_domain);
                self.install_table(&mut catalog, table, records, new_domain);
            }
            WalRecord::Drop { name } => {
                if !catalog.remove(name) {
                    return Err(conflict(format!("drop of missing table \"{name}\"")));
                }
            }
        }
        Ok(())
    }
}

// `Storable` gives records their serialized size; used by
// `dram_records`.
use pmem_sim::Storable;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_table_lifecycle() {
        let db = Database::builder().lambda(8.0).dram_records(200).build();
        assert_eq!(db.device().lambda(), 8.0);
        assert_eq!(db.create_wisconsin("t", 100, 1, 1).expect("fresh"), 100);
        assert_eq!(db.create_wisconsin("v", 100, 3, 1).expect("fresh"), 300);
        assert_eq!(
            db.tables(),
            vec![("t".to_string(), 100), ("v".to_string(), 300)]
        );
        assert_eq!(
            db.create_wisconsin("t", 5, 1, 1).unwrap_err(),
            DdlError::Duplicate("t".into())
        );
        assert!(db.drop_table("t").unwrap());
        assert!(!db.drop_table("t").unwrap());
    }

    #[test]
    fn skewed_creates_are_deterministic_and_attach_statistics() {
        let contents = || {
            let db = Database::builder().build();
            db.create_wisconsin_skewed("z", 500, 4, 7, 1.2)
                .expect("fresh");
            db.catalog().data("z").unwrap().to_vec_uncounted()
        };
        let a = contents();
        assert_eq!(a.len(), 2000);
        assert_eq!(a, contents(), "same parameters, same table");
        // Skew concentrates mass: the sketch must flag heavy keys the
        // uniform generator never produces.
        let db = Database::builder().build();
        db.create_wisconsin_skewed("z", 500, 4, 7, 1.2)
            .expect("fresh");
        db.create_wisconsin("u", 500, 4, 7).expect("fresh");
        let cat = db.catalog();
        let z = cat.statistics("z").expect("sketch attached");
        assert!(z.rows() == 2000.0 && !z.heavy_keys().is_empty());
        assert!(cat
            .statistics("u")
            .expect("sketch attached")
            .heavy_keys()
            .is_empty());
    }

    #[test]
    fn statistics_knob_disables_sketches() {
        let db = Database::builder().statistics(false).build();
        db.create_wisconsin_skewed("z", 100, 2, 3, 1.5)
            .expect("fresh");
        assert!(db.catalog().statistics("z").is_none());
    }

    #[test]
    fn skewed_tables_survive_reopen() {
        let dir = tmpdir("skew-reopen");
        let before = {
            let db = Database::open(&dir).unwrap();
            db.create_wisconsin_skewed("z", 200, 2, 9, 1.1).unwrap();
            db.catalog().data("z").unwrap().to_vec_uncounted()
        };
        let db = Database::reopen(&dir).unwrap();
        assert_eq!(db.tables(), vec![("z".to_string(), 400)]);
        assert_eq!(
            db.catalog().data("z").unwrap().to_vec_uncounted(),
            before,
            "replay regenerates the skewed table exactly"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn catalog_snapshots_survive_drops() {
        let db = Database::builder().build();
        db.create_wisconsin("t", 50, 1, 9).expect("fresh");
        let snapshot = db.catalog();
        assert!(db.drop_table("t").unwrap());
        assert!(snapshot.data("t").is_some(), "snapshot keeps the handle");
        assert!(db.catalog().data("t").is_none());
    }

    #[test]
    fn insert_appends_keys_and_grows_the_domain() {
        let db = Database::builder().build();
        db.create_wisconsin("t", 10, 1, 1).expect("fresh");
        assert_eq!(db.insert_keys("t", &[100, 200]).unwrap(), 2);
        let cat = db.catalog();
        assert_eq!(cat.stats("t").unwrap().rows, 12);
        assert_eq!(cat.stats("t").unwrap().key_domain, 201);
        assert_eq!(
            db.insert_keys("missing", &[1]).unwrap_err(),
            DdlError::Unknown("missing".into())
        );
        assert!(!db.is_durable());
        assert_eq!(db.checkpoint().unwrap_err(), DdlError::NotDurable);
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("wl-db-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn durable_database_survives_reopen() {
        let dir = tmpdir("reopen");
        {
            let db = Database::open(&dir).unwrap();
            assert!(db.is_durable());
            assert!(db.recovery_report().unwrap().fresh);
            db.create_wisconsin("t", 100, 1, 7).unwrap();
            db.create_wisconsin("gone", 5, 1, 1).unwrap();
            db.insert_keys("t", &[500, 501]).unwrap();
            db.drop_table("gone").unwrap();
            let m = db.metrics_snapshot();
            assert_eq!(m.wal_appends, 4);
            assert!(m.wal_bytes > 0);
            assert!(m.fsyncs >= 4);
        }
        let db = Database::reopen(&dir).unwrap();
        let report = db.recovery_report().unwrap();
        assert!(!report.fresh);
        assert_eq!(report.replayed_records, 4);
        assert_eq!(report.tables, 1);
        assert_eq!(report.rows, 102);
        assert_eq!(db.tables(), vec![("t".to_string(), 102)]);
        assert_eq!(db.metrics_snapshot().recoveries, 1);
        // A third open replays nothing: the reopen re-checkpointed.
        let db = Database::reopen(&dir).unwrap();
        assert_eq!(db.recovery_report().unwrap().replayed_records, 0);
        assert_eq!(db.tables(), vec![("t".to_string(), 102)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explicit_checkpoint_resets_the_wal() {
        let dir = tmpdir("ckpt");
        let db = Database::open(&dir).unwrap();
        db.create_wisconsin("t", 50, 1, 3).unwrap();
        let (tables, rows, bytes) = db.checkpoint().unwrap();
        assert_eq!((tables, rows), (1, 50));
        assert!(bytes > 50 * 80);
        // The reset log holds no records, so reopen replays nothing.
        drop(db);
        let db = Database::reopen(&dir).unwrap();
        assert_eq!(db.recovery_report().unwrap().replayed_records, 0);
        assert_eq!(db.tables(), vec![("t".to_string(), 50)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
