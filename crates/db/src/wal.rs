//! The write-ahead log: CRC-framed logical records on the file-backed
//! layer.
//!
//! The durability contract is append-then-fsync-then-apply: a statement
//! is acknowledged only after its WAL record is framed, appended, and
//! fsynced; the in-memory catalog changes afterwards. A crash therefore
//! leaves the log holding exactly the acknowledged prefix (plus at most
//! one torn tail frame, which recovery drops), and
//! [`crate::Database::reopen`] reconstructs precisely the acknowledged
//! statements.
//!
//! ## On-disk format
//!
//! ```text
//! header:  "WLWAL1\0\0" (8 bytes)  base_lsn (u64 LE)
//! frame:   len (u32 LE)  crc32 (u32 LE, IEEE, over payload)  payload
//! ```
//!
//! Records are *logical*: `CREATE TABLE … AS WISCONSIN` logs its
//! generator parameters (the generator is deterministic), `INSERT` logs
//! the keys, `DROP` logs the name. The record at index `i` of a log has
//! LSN `base_lsn + 1 + i`.
//!
//! ## Tail policy
//!
//! Reading a log distinguishes two kinds of damage:
//!
//! * **Torn tail** — the final frame is incomplete or fails its CRC and
//!   extends to end-of-file: the expected shape of a crash mid-append.
//!   The tail is dropped and recovery proceeds.
//! * **Mid-log corruption** — a frame fails its CRC with valid bytes
//!   after it, or a payload is malformed despite a good CRC: not
//!   producible by a crash, so it surfaces as a typed
//!   [`StorageError`] (never a panic, never silent data loss).

use crate::error::StorageError;
use pmem_sim::{Pm, Storage};
use std::path::{Path, PathBuf};

/// Log-file magic: format name + version, 8 bytes.
const MAGIC: &[u8; 8] = b"WLWAL1\0\0";
/// Header length: magic + base LSN.
const HEADER_LEN: usize = 16;
/// Frame header length: payload length + CRC.
const FRAME_HEADER: usize = 8;

/// File name of the live log inside a database directory.
pub const WAL_FILE: &str = "wal.log";
/// Staging name for log resets (published by atomic rename).
pub const WAL_TMP: &str = "wal.tmp";

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time —
/// the container has no checksum crate, and 30 lines of const fn beat a
/// dependency.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One logical WAL record.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// `CREATE TABLE name AS WISCONSIN(rows, fanout)` with the
    /// generator seed — enough to regenerate the table exactly.
    Create {
        /// Table name.
        name: String,
        /// Distinct keys.
        rows: u64,
        /// Records per key.
        fanout: u64,
        /// Permutation seed.
        seed: u64,
        /// Zipf exponent of the key draw (0 = uniform). Serialized as a
        /// trailing optional field: records written before the knob
        /// existed decode as uniform, so old logs stay replayable.
        skew: f64,
    },
    /// `INSERT INTO table VALUES …` — the inserted keys.
    Insert {
        /// Target table.
        table: String,
        /// Keys inserted, in statement order.
        keys: Vec<u64>,
    },
    /// `DROP TABLE name`.
    Drop {
        /// Table name.
        name: String,
    },
}

const TAG_CREATE: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_DROP: u8 = 3;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    debug_assert!(bytes.len() <= u16::MAX as usize, "identifier too long");
    buf.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    buf.extend_from_slice(bytes);
}

/// Copies `b` into a zero-padded `N`-byte array without any fallible
/// conversion — the panic-free alternative to a fallible `try_into`
/// for fixed-width little-endian reads. Callers bound `b` to exactly
/// `N` bytes first (via [`Cursor::take`] or a checked slice); a shorter
/// input zero-pads rather than panicking.
pub(crate) fn le_array<const N: usize>(b: &[u8]) -> [u8; N] {
    let mut a = [0u8; N];
    for (dst, src) in a.iter_mut().zip(b) {
        *dst = *src;
    }
    a
}

/// Byte cursor over a record payload; every read is bounds-checked so
/// malformed payloads surface as `Err`, never a panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.bytes.len() - self.pos < n {
            return Err(format!(
                "payload truncated: wanted {n} bytes at offset {}, {} left",
                self.pos,
                self.bytes.len() - self.pos
            ));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(le_array(self.take(8)?)))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = u16::from_le_bytes(le_array(self.take(2)?)) as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| "non-UTF-8 identifier".to_string())
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn done(&self) -> Result<(), String> {
        if self.pos != self.bytes.len() {
            return Err(format!(
                "{} trailing bytes after record",
                self.bytes.len() - self.pos
            ));
        }
        Ok(())
    }
}

impl WalRecord {
    /// Serializes the record payload (no frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            WalRecord::Create {
                name,
                rows,
                fanout,
                seed,
                skew,
            } => {
                buf.push(TAG_CREATE);
                put_str(&mut buf, name);
                buf.extend_from_slice(&rows.to_le_bytes());
                buf.extend_from_slice(&fanout.to_le_bytes());
                buf.extend_from_slice(&seed.to_le_bytes());
                // Trailing optional field: uniform creates keep the
                // legacy layout byte-for-byte.
                if *skew != 0.0 {
                    buf.extend_from_slice(&skew.to_bits().to_le_bytes());
                }
            }
            WalRecord::Insert { table, keys } => {
                buf.push(TAG_INSERT);
                put_str(&mut buf, table);
                buf.extend_from_slice(&(keys.len() as u32).to_le_bytes());
                for k in keys {
                    buf.extend_from_slice(&k.to_le_bytes());
                }
            }
            WalRecord::Drop { name } => {
                buf.push(TAG_DROP);
                put_str(&mut buf, name);
            }
        }
        buf
    }

    /// Deserializes a record payload; `Err` is a human-readable cause.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let mut cur = Cursor {
            bytes: payload,
            pos: 0,
        };
        let tag = cur.take(1)?[0];
        let rec = match tag {
            TAG_CREATE => {
                let name = cur.str()?;
                let rows = cur.u64()?;
                let fanout = cur.u64()?;
                let seed = cur.u64()?;
                let skew = if cur.remaining() > 0 {
                    f64::from_bits(cur.u64()?)
                } else {
                    0.0
                };
                if !(0.0..=4.0).contains(&skew) {
                    return Err(format!("skew {skew} out of range"));
                }
                WalRecord::Create {
                    name,
                    rows,
                    fanout,
                    seed,
                    skew,
                }
            }
            TAG_INSERT => {
                let table = cur.str()?;
                let n = u32::from_le_bytes(le_array(cur.take(4)?)) as usize;
                let mut keys = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    keys.push(cur.u64()?);
                }
                WalRecord::Insert { table, keys }
            }
            TAG_DROP => WalRecord::Drop { name: cur.str()? },
            other => return Err(format!("unknown record tag {other}")),
        };
        cur.done()?;
        Ok(rec)
    }
}

/// A parsed log: base LSN, intact records, and how much tail (if any)
/// was dropped as torn.
#[derive(Clone, Debug, PartialEq)]
pub struct WalReadout {
    /// LSN the log starts after (records begin at `base_lsn + 1`).
    pub base_lsn: u64,
    /// Intact records in append order.
    pub records: Vec<WalRecord>,
    /// Bytes dropped from the end as a torn/incomplete tail (0 = clean).
    pub dropped_tail_bytes: u64,
}

impl WalReadout {
    /// LSN of the last intact record (or `base_lsn` if none).
    pub fn last_lsn(&self) -> u64 {
        self.base_lsn + self.records.len() as u64
    }

    fn empty() -> Self {
        Self {
            base_lsn: 0,
            records: Vec::new(),
            dropped_tail_bytes: 0,
        }
    }
}

/// Parses the log at `path` under the tail policy described in the
/// module docs. A missing file reads as an empty log (a crash between
/// checkpoint publication and log creation leaves exactly that state).
pub fn read_wal(path: &Path) -> Result<WalReadout, StorageError> {
    let display = path.display().to_string();
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalReadout::empty()),
        Err(e) => return Err(StorageError::file(display, e.to_string())),
    };
    if bytes.len() < HEADER_LEN {
        // A header can only be cut short by a crash during initial
        // creation, before any record could have been acknowledged:
        // the committed state is empty.
        return Ok(WalReadout {
            dropped_tail_bytes: bytes.len() as u64,
            ..WalReadout::empty()
        });
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(StorageError::at(display, 0, "bad WAL magic"));
    }
    let base_lsn = u64::from_le_bytes(le_array(&bytes[8..16]));
    let mut records = Vec::new();
    let mut off = HEADER_LEN;
    let mut dropped_tail_bytes = 0u64;
    while off < bytes.len() {
        let rem = bytes.len() - off;
        if rem < FRAME_HEADER {
            dropped_tail_bytes = rem as u64;
            break;
        }
        let len = u32::from_le_bytes(le_array(&bytes[off..off + 4])) as usize;
        let crc = u32::from_le_bytes(le_array(&bytes[off + 4..off + 8]));
        if len > rem - FRAME_HEADER {
            // Incomplete payload: the append was cut mid-frame.
            dropped_tail_bytes = rem as u64;
            break;
        }
        let payload = &bytes[off + FRAME_HEADER..off + FRAME_HEADER + len];
        if crc32(payload) != crc {
            if off + FRAME_HEADER + len == bytes.len() {
                // The damaged frame is the last thing in the file: a
                // torn tail, exactly what a kill mid-append produces.
                dropped_tail_bytes = rem as u64;
                break;
            }
            return Err(StorageError::at(
                display,
                off as u64,
                "WAL frame CRC mismatch with valid data after it (mid-log corruption)",
            ));
        }
        let rec = WalRecord::decode(payload).map_err(|cause| {
            StorageError::at(
                display.clone(),
                off as u64,
                format!("bad WAL record: {cause}"),
            )
        })?;
        records.push(rec);
        off += FRAME_HEADER + len;
    }
    Ok(WalReadout {
        base_lsn,
        records,
        dropped_tail_bytes,
    })
}

/// An open, appendable log.
#[derive(Debug)]
pub struct Wal {
    storage: Storage,
    next_lsn: u64,
}

impl Wal {
    /// Creates a fresh log in `dir` starting after `base_lsn`, staged
    /// as `wal.tmp` and published by atomic rename — the previous log
    /// stays intact until the new header is durable.
    pub fn create(dir: &Path, dev: &Pm, base_lsn: u64) -> Result<Self, StorageError> {
        let tmp = dir.join(WAL_TMP);
        let mut storage = Storage::create_file(&tmp, dev.config()).map_err(StorageError::from)?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&base_lsn.to_le_bytes());
        storage
            .try_append(&header, dev)
            .map_err(StorageError::from)?;
        storage.fsync(dev).map_err(StorageError::from)?;
        storage
            .persist_as(dir.join(WAL_FILE))
            .map_err(StorageError::from)?;
        Ok(Self {
            storage,
            next_lsn: base_lsn + 1,
        })
    }

    /// Appends and fsyncs one record; on success the record is durable
    /// and its LSN assigned. Returns `(lsn, framed_bytes)`. On error the
    /// record is *not* acknowledged (the statement must fail).
    pub fn append(&mut self, record: &WalRecord, dev: &Pm) -> Result<(u64, u64), StorageError> {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.storage
            .try_append(&frame, dev)
            .map_err(StorageError::from)?;
        self.storage.fsync(dev).map_err(StorageError::from)?;
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        Ok((lsn, frame.len() as u64))
    }

    /// LSN of the last acknowledged record (or the base LSN if none).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Path of the log file.
    pub fn path(&self) -> PathBuf {
        self.storage
            .file_path()
            .map(Path::to_path_buf)
            .unwrap_or_default()
    }
}

#[cfg(test)]
#[path = "wal_tests.rs"]
mod tests;
