//! Checkpoints and the durable-state bookkeeping behind
//! [`crate::Database::reopen`].
//!
//! A checkpoint is a full materialization of the catalog — every bound
//! table's name, key domain, and rows — stamped with the LSN of the
//! last statement it covers and sealed by a trailing CRC. It is written
//! to `checkpoint.tmp`, fsynced, and published by atomic rename, so a
//! crash mid-checkpoint leaves the previous checkpoint (and the log
//! that reaches past it) untouched.
//!
//! Recovery = load the checkpoint, replay the intact WAL records with
//! LSNs past it, then write a *fresh* checkpoint and reset the log —
//! which both bounds replay time and scrubs any torn tail without ever
//! physically truncating a file in place.
//!
//! ## Checkpoint format
//!
//! ```text
//! magic "WLCKPT1\0" (8 bytes)
//! last_lsn (u64 LE)   table_count (u32 LE)
//! per table: name_len (u16 LE) + name bytes,
//!            key_domain (u64 LE), rows (u64 LE), rows × 80-byte records
//! crc32 (u32 LE, IEEE, over every preceding byte)
//! ```

use crate::error::StorageError;
use crate::wal::{crc32, le_array};
use pmem_sim::{Pm, Storable, Storage};
use std::path::Path;
use wisconsin::WisconsinRecord;

/// Checkpoint magic: format name + version, 8 bytes.
const MAGIC: &[u8; 8] = b"WLCKPT1\0";

/// File name of the live checkpoint inside a database directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";
/// Staging name for checkpoint writes (published by atomic rename).
pub const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// One table's full state inside a checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointTable {
    /// Table name.
    pub name: String,
    /// Key-domain size the planner estimates selectivities against.
    pub key_domain: u64,
    /// Every row.
    pub records: Vec<WisconsinRecord>,
}

/// A full-database checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointData {
    /// LSN of the last statement this checkpoint covers; recovery
    /// replays only WAL records with larger LSNs.
    pub last_lsn: u64,
    /// Tables in name order.
    pub tables: Vec<CheckpointTable>,
}

impl CheckpointData {
    /// Total rows across all tables.
    pub fn total_rows(&self) -> u64 {
        self.tables.iter().map(|t| t.records.len() as u64).sum()
    }
}

/// Serializes, writes (one append through the fault-injectable file
/// layer), fsyncs, and atomically publishes a checkpoint. Returns the
/// byte size written.
pub fn write_checkpoint(dir: &Path, dev: &Pm, data: &CheckpointData) -> Result<u64, StorageError> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&data.last_lsn.to_le_bytes());
    buf.extend_from_slice(&(data.tables.len() as u32).to_le_bytes());
    for table in &data.tables {
        let name = table.name.as_bytes();
        buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
        buf.extend_from_slice(name);
        buf.extend_from_slice(&table.key_domain.to_le_bytes());
        buf.extend_from_slice(&(table.records.len() as u64).to_le_bytes());
        let at = buf.len();
        buf.resize(at + table.records.len() * WisconsinRecord::SIZE, 0);
        for (i, rec) in table.records.iter().enumerate() {
            rec.write_to(&mut buf[at + i * WisconsinRecord::SIZE..]);
        }
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());

    let tmp = dir.join(CHECKPOINT_TMP);
    let mut storage = Storage::create_file(&tmp, dev.config()).map_err(StorageError::from)?;
    storage.try_append(&buf, dev).map_err(StorageError::from)?;
    storage.fsync(dev).map_err(StorageError::from)?;
    storage
        .persist_as(dir.join(CHECKPOINT_FILE))
        .map_err(StorageError::from)?;
    Ok(buf.len() as u64)
}

/// Loads the checkpoint in `dir`. `None` means no checkpoint exists (a
/// directory never initialized as a database). Any damage — truncation,
/// bad magic, CRC mismatch — is a typed error: checkpoints are
/// published atomically, so a bad one is real corruption, not a crash
/// artifact.
pub fn read_checkpoint(dir: &Path) -> Result<Option<CheckpointData>, StorageError> {
    let path = dir.join(CHECKPOINT_FILE);
    let display = path.display().to_string();
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StorageError::file(display, e.to_string())),
    };
    let truncated = |at: usize, what: &str| {
        StorageError::at(
            display.clone(),
            at as u64,
            format!("truncated checkpoint: {what}"),
        )
    };
    if bytes.len() < MAGIC.len() + 8 + 4 + 4 {
        return Err(truncated(bytes.len(), "shorter than an empty checkpoint"));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(StorageError::at(display, 0, "bad checkpoint magic"));
    }
    let body = &bytes[..bytes.len() - 4];
    let stored_crc = u32::from_le_bytes(le_array(&bytes[bytes.len() - 4..]));
    if crc32(body) != stored_crc {
        return Err(StorageError::at(
            display,
            (bytes.len() - 4) as u64,
            "checkpoint CRC mismatch",
        ));
    }
    let mut pos = MAGIC.len();
    let take = |pos: &mut usize, n: usize, what: &str| -> Result<&[u8], StorageError> {
        if body.len() - *pos < n {
            return Err(truncated(*pos, what));
        }
        let out = &body[*pos..*pos + n];
        *pos += n;
        Ok(out)
    };
    let last_lsn = u64::from_le_bytes(le_array(take(&mut pos, 8, "last_lsn")?));
    let table_count = u32::from_le_bytes(le_array(take(&mut pos, 4, "table count")?)) as usize;
    let mut tables = Vec::with_capacity(table_count.min(1 << 16));
    for _ in 0..table_count {
        let name_len = u16::from_le_bytes(le_array(take(&mut pos, 2, "name length")?)) as usize;
        let name = String::from_utf8(take(&mut pos, name_len, "name")?.to_vec())
            .map_err(|_| truncated(pos, "non-UTF-8 table name"))?;
        let key_domain = u64::from_le_bytes(le_array(take(&mut pos, 8, "key domain")?));
        let rows = u64::from_le_bytes(le_array(take(&mut pos, 8, "row count")?));
        let data = take(&mut pos, rows as usize * WisconsinRecord::SIZE, "rows")?;
        let records = data
            .chunks_exact(WisconsinRecord::SIZE)
            .map(WisconsinRecord::read_from)
            .collect();
        tables.push(CheckpointTable {
            name,
            key_domain,
            records,
        });
    }
    if pos != body.len() {
        return Err(truncated(pos, "trailing bytes after last table"));
    }
    Ok(Some(CheckpointData { last_lsn, tables }))
}

/// What [`crate::Database::reopen`] found and did. Every field is
/// deterministic for a given on-disk state, so the wlsql banner built
/// from it can be golden-tested.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// True if the directory held no database and one was initialized.
    pub fresh: bool,
    /// Tables live after recovery.
    pub tables: u64,
    /// Rows live after recovery.
    pub rows: u64,
    /// WAL records replayed past the checkpoint.
    pub replayed_records: u64,
    /// Torn/incomplete WAL tail bytes dropped.
    pub dropped_wal_bytes: u64,
}

impl RecoveryReport {
    /// The one-line banner wlsql prints on open.
    pub fn banner(&self) -> String {
        if self.fresh {
            "durable: fresh database".to_string()
        } else {
            let mut line = format!(
                "durable: recovered {} tables ({} rows), replayed {} wal records",
                self.tables, self.rows, self.replayed_records
            );
            if self.dropped_wal_bytes > 0 {
                line.push_str(&format!(
                    ", dropped {} torn tail bytes",
                    self.dropped_wal_bytes
                ));
            }
            line
        }
    }
}

#[cfg(test)]
#[path = "durable_tests.rs"]
mod tests;
