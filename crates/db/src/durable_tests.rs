//! Unit tests for checkpoints/recovery bookkeeping, split out of
//! `durable.rs` so the shipping file stays literally panic-free
//! (`wl-audit` skips `*_tests.rs`).

use super::*;
use pmem_sim::PmDevice;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("wl-ckpt-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("tmpdir");
    d
}

fn sample() -> CheckpointData {
    CheckpointData {
        last_lsn: 17,
        tables: vec![
            CheckpointTable {
                name: "a".into(),
                key_domain: 5,
                records: (0..5).map(WisconsinRecord::from_key).collect(),
            },
            CheckpointTable {
                name: "empty".into(),
                key_domain: 0,
                records: Vec::new(),
            },
        ],
    }
}

#[test]
fn checkpoint_roundtrips() {
    let dir = tmpdir("roundtrip");
    let dev = PmDevice::paper_default();
    let data = sample();
    let bytes = write_checkpoint(&dir, &dev, &data).unwrap();
    assert!(bytes > 0);
    assert!(!dir.join(CHECKPOINT_TMP).exists(), "tmp was renamed away");
    let loaded = read_checkpoint(&dir).unwrap().expect("present");
    assert_eq!(loaded, data);
    assert_eq!(loaded.total_rows(), 5);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_checkpoint_is_none() {
    let dir = tmpdir("missing");
    assert_eq!(read_checkpoint(&dir).unwrap(), None);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_checkpoint_is_a_typed_error() {
    let dir = tmpdir("corrupt");
    let dev = PmDevice::paper_default();
    write_checkpoint(&dir, &dev, &sample()).unwrap();
    let path = dir.join(CHECKPOINT_FILE);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[20] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let err = read_checkpoint(&dir).unwrap_err();
    assert!(err.cause.contains("CRC"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_checkpoint_is_a_typed_error() {
    let dir = tmpdir("trunc");
    let dev = PmDevice::paper_default();
    write_checkpoint(&dir, &dev, &sample()).unwrap();
    let path = dir.join(CHECKPOINT_FILE);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..10]).unwrap();
    let err = read_checkpoint(&dir).unwrap_err();
    assert!(err.cause.contains("truncated"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_banner_is_deterministic() {
    let fresh = RecoveryReport {
        fresh: true,
        ..Default::default()
    };
    assert_eq!(fresh.banner(), "durable: fresh database");
    let recovered = RecoveryReport {
        fresh: false,
        tables: 2,
        rows: 300,
        replayed_records: 4,
        dropped_wal_bytes: 0,
    };
    assert_eq!(
        recovered.banner(),
        "durable: recovered 2 tables (300 rows), replayed 4 wal records"
    );
    let torn = RecoveryReport {
        dropped_wal_bytes: 33,
        ..recovered
    };
    assert!(torn.banner().ends_with("dropped 33 torn tail bytes"));
}
