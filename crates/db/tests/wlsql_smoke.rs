//! End-to-end smoke test: pipe the scripted golden session through the
//! `wlsql` binary and diff its stdout against the checked-in golden
//! file — the same check CI runs as a shell step. The session pins
//! `SET threads` up front, so the output is identical under any
//! `WL_THREADS` (the CI matrix runs both serial and DoP 4).

use std::io::Write;
use std::process::{Command, Stdio};

/// Masks host-dependent fields so profiled output diffs cleanly: wall
/// times (`12.3ms wall`, `0.4ms host`) become `#ms ...`, and the
/// `exec_wall_ns` metric line loses its value. Mirrors the sed
/// expression CI applies before its shell-level diff.
fn mask_host_time(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for line in raw.lines() {
        if let Some(ns) = line.strip_prefix("exec_wall_ns  ") {
            if !ns.is_empty() && ns.bytes().all(|b| b.is_ascii_digit()) {
                out.push_str("exec_wall_ns  #\n");
                continue;
            }
        }
        let mut masked = String::with_capacity(line.len());
        let mut rest = line;
        loop {
            let hit = ["ms wall", "ms host"]
                .iter()
                .filter_map(|m| rest.find(m))
                .min();
            let Some(at) = hit else {
                masked.push_str(rest);
                break;
            };
            let number_start = rest[..at]
                .rfind(|c: char| !c.is_ascii_digit() && c != '.')
                .map_or(0, |i| i + 1);
            masked.push_str(&rest[..number_start]);
            masked.push('#');
            masked.push_str(&rest[at..at + 7]);
            rest = &rest[at + 7..];
        }
        masked.push('\n');
        out.push_str(&masked);
    }
    out
}

fn run_wlsql(sql: &str) -> String {
    run_wlsql_with(&[], sql)
}

fn run_wlsql_with(args: &[&str], sql: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_wlsql"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("wlsql starts");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(sql.as_bytes())
        .expect("session written");
    let out = child.wait_with_output().expect("wlsql exits");
    assert!(out.status.success(), "wlsql failed: {:?}", out.status);
    String::from_utf8(out.stdout).expect("utf-8 output")
}

fn diff_against_golden(stdout: &str, expected: &str) {
    if stdout != expected {
        // Line-level diff for a readable failure.
        let got: Vec<&str> = stdout.lines().collect();
        let want: Vec<&str> = expected.lines().collect();
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g, w, "first divergence at golden line {}", i + 1);
        }
        assert_eq!(
            got.len(),
            want.len(),
            "output length differs (got {}, golden {})",
            got.len(),
            want.len()
        );
        panic!("outputs differ in trailing whitespace only");
    }
}

#[test]
fn analyze_session_matches_the_golden_output_after_masking() {
    // The observability session: EXPLAIN ANALYZE trees, the profile and
    // timing knobs, SHOW METRICS. Simulated columns are deterministic;
    // host wall-clock fields are masked on both sides of the diff.
    let stdout = run_wlsql(include_str!("golden/analyze.sql"));
    diff_against_golden(&mask_host_time(&stdout), include_str!("golden/analyze.out"));
}

#[test]
fn masking_pins_exactly_the_host_dependent_fields() {
    let raw = "  scan t  [2000 rows | 0r/0w meas | 0.0000s sim | 12.3ms wall]\n\
               -- 3 rows in 1 batches, 0.0000s simulated, 1.1ms host\n\
               exec_wall_ns  25484587\n\
               pool_peak_bytes  40000\n";
    let masked = mask_host_time(raw);
    assert!(masked.contains("| #ms wall]"), "{masked}");
    assert!(masked.contains(", #ms host"), "{masked}");
    assert!(masked.contains("exec_wall_ns  #\n"), "{masked}");
    // Simulated fields pass through untouched.
    assert!(masked.contains("0.0000s sim"));
    assert!(masked.contains("pool_peak_bytes  40000"));
}

#[test]
fn persistence_session_survives_a_reopen() {
    // Part 1 builds a durable database (create, insert, checkpoint,
    // post-checkpoint DDL); part 2 reopens the same directory and must
    // see the recovered state, starting with the deterministic recovery
    // banner. Same pair of sessions CI runs as a shell step.
    let dir = std::env::temp_dir().join(format!("wlsql-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.to_str().expect("utf-8 temp path");

    let first = run_wlsql_with(&["--path", path], include_str!("golden/persist.sql"));
    diff_against_golden(&first, include_str!("golden/persist.out"));
    let second = run_wlsql_with(&["--path", path], include_str!("golden/persist2.sql"));
    diff_against_golden(&second, include_str!("golden/persist2.out"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scripted_session_matches_the_golden_output() {
    let sql = include_str!("golden/session.sql");
    let expected = include_str!("golden/session.out");

    let mut child = Command::new(env!("CARGO_BIN_EXE_wlsql"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("wlsql starts");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(sql.as_bytes())
        .expect("session written");
    let out = child.wait_with_output().expect("wlsql exits");

    assert!(out.status.success(), "wlsql failed: {:?}", out.status);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    if stdout != expected {
        // Line-level diff for a readable failure.
        let got: Vec<&str> = stdout.lines().collect();
        let want: Vec<&str> = expected.lines().collect();
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g, w, "first divergence at golden line {}", i + 1);
        }
        assert_eq!(
            got.len(),
            want.len(),
            "output length differs (got {}, golden {})",
            got.len(),
            want.len()
        );
        panic!("outputs differ in trailing whitespace only");
    }
}
