//! End-to-end smoke test: pipe the scripted golden session through the
//! `wlsql` binary and diff its stdout against the checked-in golden
//! file — the same check CI runs as a shell step. The session pins
//! `SET threads` up front, so the output is identical under any
//! `WL_THREADS` (the CI matrix runs both serial and DoP 4).

use std::io::Write;
use std::process::{Command, Stdio};

#[test]
fn scripted_session_matches_the_golden_output() {
    let sql = include_str!("golden/session.sql");
    let expected = include_str!("golden/session.out");

    let mut child = Command::new(env!("CARGO_BIN_EXE_wlsql"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("wlsql starts");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(sql.as_bytes())
        .expect("session written");
    let out = child.wait_with_output().expect("wlsql exits");

    assert!(out.status.success(), "wlsql failed: {:?}", out.status);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    if stdout != expected {
        // Line-level diff for a readable failure.
        let got: Vec<&str> = stdout.lines().collect();
        let want: Vec<&str> = expected.lines().collect();
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g, w, "first divergence at golden line {}", i + 1);
        }
        assert_eq!(
            got.len(),
            want.len(),
            "output length differs (got {}, golden {})",
            got.len(),
            want.len()
        );
        panic!("outputs differ in trailing whitespace only");
    }
}
