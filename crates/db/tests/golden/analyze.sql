-- wlsql golden observability session: EXPLAIN ANALYZE over a filtered
-- scan and a three-way join, the profile knob, timing footers, and the
-- metrics registry. Host wall-clock numbers vary run to run, so the
-- harness (and CI's sed step) masks `...ms wall`, `...ms host`, and the
-- exec_wall_ns metric before diffing. Threads are pinned first so the
-- simulated columns are identical under any WL_THREADS.
SET threads = 2;
SET batch = 8;
SET timing = on;
CREATE TABLE t AS WISCONSIN(2000);
CREATE TABLE v AS WISCONSIN(2000, 4);
CREATE TABLE w AS WISCONSIN(2000);
EXPLAIN ANALYZE SELECT * FROM t WHERE key < 40 ORDER BY key;
EXPLAIN ANALYZE SELECT t.key, v.payload, w.payload FROM t JOIN v ON t.key = v.key JOIN w ON v.key = w.key WHERE t.key < 100 ORDER BY key;
-- The profile knob turns span capture off; EXPLAIN ANALYZE forces it
-- back on for its own statement.
SET profile = off;
SELECT key FROM t WHERE key < 3 ORDER BY key;
EXPLAIN ANALYZE SELECT key FROM t WHERE key < 3 ORDER BY key;
-- Zipf-skewed create (the fourth WISCONSIN argument): the ingest-side
-- sketch hands the planner true key frequencies, so the estimated and
-- observed cardinalities below agree despite the skew.
CREATE TABLE z AS WISCONSIN(500, 4, 11, 1.2);
EXPLAIN ANALYZE SELECT z.key FROM z JOIN w ON z.key = w.key WHERE z.key < 50 ORDER BY key;
SET timing = off;
SHOW METRICS;
