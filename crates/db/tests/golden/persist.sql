-- Golden durable session, part 1 (run with --path on a fresh dir):
-- create, insert, checkpoint, then mutate past the checkpoint so the
-- reopen in part 2 has WAL records to replay. DoP pinned so the output
-- is identical under any WL_THREADS.
SET threads = 2;
CREATE TABLE t AS WISCONSIN(1000);
INSERT INTO t VALUES (1000), (1001);
SELECT * FROM t WHERE key >= 998 ORDER BY key;
CHECKPOINT;
CREATE TABLE v AS WISCONSIN(500, 2);
DROP TABLE v;
CREATE TABLE v AS WISCONSIN(200, 2, 7);
SHOW TABLES;
