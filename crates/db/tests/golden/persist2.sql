-- Golden durable session, part 2: reopen the directory part 1 wrote.
-- The recovery banner (first output line) pins how many WAL records
-- were replayed; the queries check the recovered data itself.
SET threads = 2;
SHOW TABLES;
SELECT * FROM t WHERE key >= 998 ORDER BY key;
SELECT * FROM v WHERE key < 3 ORDER BY key;
