-- wlsql golden smoke session: create Wisconsin tables, stream a
-- filtered scan, run join + group-by + order-by queries, and check
-- EXPLAIN concordance. Threads are pinned first so the session is
-- deterministic under any WL_THREADS.
SET threads = 2;
SET batch = 8;
CREATE TABLE t AS WISCONSIN(2000);
CREATE TABLE v AS WISCONSIN(2000, 4);
SHOW TABLES;
SELECT * FROM t WHERE key < 20 ORDER BY key LIMIT 18;
SELECT key, count, sum FROM t JOIN v ON t.key = v.key WHERE t.key < 10 GROUP BY key ORDER BY key;
SELECT t.key, v.payload FROM t JOIN v ON t.key = v.key WHERE t.key % 500 = 3 ORDER BY key;
EXPLAIN SELECT * FROM t JOIN v ON t.key = v.key WHERE t.key < 1000 GROUP BY key;
SELECT * FROM missing;
SELECT * FROM t WHERE key < 'abc';
DROP TABLE t;
SHOW TABLES;
