-- wlsql golden smoke session: create Wisconsin tables, stream a
-- filtered scan, run join + group-by + order-by queries (two-way and
-- three-way), and check EXPLAIN concordance. Threads are pinned first
-- so the session is deterministic under any WL_THREADS.
SET threads = 2;
SET batch = 8;
CREATE TABLE t AS WISCONSIN(2000);
CREATE TABLE v AS WISCONSIN(2000, 4);
CREATE TABLE w AS WISCONSIN(2000);
SHOW TABLES;
SELECT * FROM t WHERE key < 20 ORDER BY key LIMIT 18;
SELECT key, count, sum FROM t JOIN v ON t.key = v.key WHERE t.key < 10 GROUP BY key ORDER BY key;
SELECT t.key, v.payload FROM t JOIN v ON t.key = v.key WHERE t.key % 500 = 3 ORDER BY key;
EXPLAIN SELECT * FROM t JOIN v ON t.key = v.key WHERE t.key < 1000 GROUP BY key;
-- Three-way join: the planner's DP join-order search picks the edge
-- order; the folded rows carry one payload per relation.
SELECT t.key, v.payload, w.payload FROM t JOIN v ON t.key = v.key JOIN w ON v.key = w.key WHERE t.key < 3 ORDER BY key;
EXPLAIN SELECT * FROM t JOIN v ON t.key = v.key JOIN w ON v.key = w.key WHERE t.key < 200 ORDER BY key;
-- Self-joins need an alias; LIMIT 0 never executes.
SELECT key FROM w JOIN w AS u ON w.key = u.key ORDER BY key LIMIT 3;
SELECT * FROM t JOIN t ON t.key = t.key;
SELECT * FROM t JOIN v ON t.key = v.key ORDER BY key LIMIT 0;
SELECT * FROM missing;
SELECT * FROM t WHERE key < 'abc';
DROP TABLE t;
SHOW TABLES;
