//! Line-precise tests over the known-bad fixtures: each fixture trips
//! exactly its rule at the expected line, and `// audit:allow`
//! suppresses it (when it carries a reason).

use wl_audit::{rules, scan_source, Diagnostic};

/// Asserts `diags` is exactly the given `(line, rule)` set, in order.
fn assert_diags(diags: &[Diagnostic], expect: &[(u32, &str)]) {
    let got: Vec<(u32, &str)> = diags.iter().map(|d| (d.line, d.rule)).collect();
    assert_eq!(got, expect, "diagnostics: {diags:#?}");
}

#[test]
fn counted_io_outside_sim_trips_at_the_fetch_add() {
    let diags = scan_source(
        "crates/runtime/src/exec.rs",
        include_str!("../fixtures/counted_io.rs"),
    );
    assert_diags(&diags, &[(10, rules::COUNTED_IO)]);
}

#[test]
fn counted_io_inside_sim_outside_accounting_files_trips() {
    let diags = scan_source(
        "crates/pmem-sim/src/layer.rs",
        include_str!("../fixtures/counted_io_sim.rs"),
    );
    assert_diags(&diags, &[(7, rules::COUNTED_IO)]);
}

#[test]
fn counted_io_is_silent_in_the_accounting_files() {
    let diags = scan_source(
        "crates/pmem-sim/src/metrics.rs",
        include_str!("../fixtures/counted_io_sim.rs"),
    );
    assert_diags(&diags, &[]);
}

#[test]
fn ledger_only_trips_charges_and_merges_outside_the_simulator() {
    let diags = scan_source(
        "crates/runtime/src/exec.rs",
        include_str!("../fixtures/ledger_only.rs"),
    );
    assert_diags(&diags, &[(5, rules::LEDGER_ONLY), (9, rules::LEDGER_ONLY)]);
}

#[test]
fn ledger_only_allows_charges_inside_the_simulator_but_not_merges() {
    let diags = scan_source(
        "crates/pmem-sim/src/layer.rs",
        include_str!("../fixtures/ledger_only.rs"),
    );
    assert_diags(&diags, &[(9, rules::LEDGER_ONLY)]);
}

#[test]
fn ledger_only_trips_charges_in_sim_files_outside_the_charge_list() {
    // Simulator files that aren't metrics/layer/pages (spans, devices,
    // pools) observe the ledger; a charge there is a violation too.
    let diags = scan_source(
        "crates/pmem-sim/src/span.rs",
        include_str!("../fixtures/ledger_only.rs"),
    );
    assert_diags(&diags, &[(5, rules::LEDGER_ONLY), (9, rules::LEDGER_ONLY)]);
}

#[test]
fn ledger_only_allows_charges_in_the_page_cache() {
    let diags = scan_source(
        "crates/pmem-sim/src/pages.rs",
        include_str!("../fixtures/ledger_only.rs"),
    );
    assert_diags(&diags, &[(9, rules::LEDGER_ONLY)]);
}

#[test]
fn ledger_only_is_silent_in_the_shard_merge_internals() {
    let diags = scan_source(
        "crates/pmem-sim/src/metrics.rs",
        include_str!("../fixtures/ledger_only.rs"),
    );
    assert_diags(&diags, &[]);
}

#[test]
fn uncounted_api_trips_outside_the_whitelist() {
    let diags = scan_source(
        "crates/runtime/src/exec.rs",
        include_str!("../fixtures/uncounted_api.rs"),
    );
    assert_diags(&diags, &[(5, rules::UNCOUNTED_API)]);
}

#[test]
fn uncounted_api_is_silent_at_delivery_sites() {
    let diags = scan_source(
        "crates/planner/src/lower.rs",
        include_str!("../fixtures/uncounted_api.rs"),
    );
    assert_diags(&diags, &[]);
}

#[test]
fn wal_order_trips_on_state_applied_before_the_append() {
    let diags = scan_source(
        "crates/db/src/database.rs",
        include_str!("../fixtures/wal_order.rs"),
    );
    assert_diags(&diags, &[(4, rules::WAL_ORDER)]);
}

#[test]
fn wal_order_trips_on_append_without_fsync() {
    let diags = scan_source(
        "crates/db/src/wal.rs",
        include_str!("../fixtures/wal_fsync.rs"),
    );
    assert_diags(&diags, &[(4, rules::WAL_ORDER)]);
}

#[test]
fn panic_free_trips_each_site_in_a_zone_file() {
    let diags = scan_source(
        "crates/db/src/wal.rs",
        include_str!("../fixtures/panic_free.rs"),
    );
    assert_diags(
        &diags,
        &[
            (3, rules::PANIC_FREE),
            (4, rules::PANIC_FREE),
            (6, rules::PANIC_FREE),
        ],
    );
}

#[test]
fn panic_free_is_silent_outside_the_zones() {
    let diags = scan_source(
        "crates/wisconsin/src/lib.rs",
        include_str!("../fixtures/panic_free.rs"),
    );
    assert_diags(&diags, &[]);
}

#[test]
fn span_coverage_trips_on_spanless_operator_modules() {
    let diags = scan_source(
        "crates/core/src/sort/bogus.rs",
        include_str!("../fixtures/span_coverage.rs"),
    );
    assert_diags(&diags, &[(1, rules::SPAN_COVERAGE)]);
}

#[test]
fn span_coverage_skips_dispatch_and_helper_files() {
    let diags = scan_source(
        "crates/core/src/sort/mod.rs",
        include_str!("../fixtures/span_coverage.rs"),
    );
    assert_diags(&diags, &[]);
}

#[test]
fn allow_with_reason_suppresses_the_finding() {
    let diags = scan_source(
        "crates/db/src/wal.rs",
        include_str!("../fixtures/allow_suppressed.rs"),
    );
    assert_diags(&diags, &[]);
}

#[test]
fn allow_without_reason_is_itself_flagged() {
    let diags = scan_source(
        "crates/db/src/wal.rs",
        include_str!("../fixtures/allow_no_reason.rs"),
    );
    assert_diags(&diags, &[(3, rules::ALLOW_REASON), (3, rules::PANIC_FREE)]);
}

#[test]
fn allow_for_the_wrong_rule_does_not_suppress() {
    let src = "pub fn f(b: &[u8]) -> u8 {\n    // audit:allow(wal-order) wrong rule\n    *b.first().unwrap()\n}\n";
    let diags = scan_source("crates/db/src/wal.rs", src);
    assert_diags(&diags, &[(3, rules::PANIC_FREE)]);
}

#[test]
fn the_shipped_workspace_is_clean() {
    let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = wl_audit::find_workspace_root(here).expect("workspace root");
    let diags = wl_audit::scan_workspace(&root);
    assert!(
        diags.is_empty(),
        "wl-audit found {} violation(s) in the shipped tree:\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
