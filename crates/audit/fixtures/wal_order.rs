//! Fixture: state applied before the WAL append.
impl Database {
    pub fn create_table(&self, t: Table) -> Result<(), DdlError> {
        self.install_table(t.clone());
        self.log(&Record::Create(t))?;
        Ok(())
    }
}
