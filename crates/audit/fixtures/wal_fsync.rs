//! Fixture: append acknowledged without a following fsync.
impl Wal {
    pub fn push(&mut self, rec: &[u8]) -> Result<u64, StorageError> {
        let lsn = self.storage.try_append(self.file, rec)?;
        Ok(lsn)
    }
}
