//! Fixture: raw atomic RMW inside the simulator, outside its accounting files.
use std::sync::atomic::{AtomicU64, Ordering};

pub static LOCAL: AtomicU64 = AtomicU64::new(0);

pub fn bump() {
    LOCAL.fetch_add(1, Ordering::Relaxed);
}
