//! Fixture: shadow device-counter accounting outside pmem-sim.
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Shadow {
    pub cl_writes: AtomicU64,
}

impl Shadow {
    pub fn bump(&self) {
        self.cl_writes.fetch_add(1, Ordering::Relaxed);
    }
}
