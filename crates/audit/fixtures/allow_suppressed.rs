//! Fixture: an allow comment with a reason suppresses the finding.
pub fn decode(bytes: &[u8]) -> u8 {
    // audit:allow(panic-free) fixture demonstrating suppression
    *bytes.first().unwrap()
}
