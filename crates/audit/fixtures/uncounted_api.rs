//! Fixture: uncounted escape hatch on a measured path.
use pmem_sim::PCollection;

pub fn drain(col: &PCollection) -> Vec<Vec<u8>> {
    col.to_vec_uncounted()
}
