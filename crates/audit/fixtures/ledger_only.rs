// Known-bad fixture for the ledger-only rule: a direct counter charge
// and a direct shard publication, both of which are pmem-sim-internal
// privileges.
pub fn charge_directly(m: &Metrics) {
    m.add_reads(1);
}

pub fn publish_directly(bank: &Bank, delta: &ShardDelta) {
    bank.merge_shard(delta);
}
