//! Fixture: panics in recovery code.
pub fn decode(bytes: &[u8]) -> u64 {
    let first = bytes.first().unwrap();
    let arr: [u8; 8] = bytes[..8].try_into().expect("8 bytes");
    if *first == 0 {
        unreachable!("zero tag");
    }
    u64::from_le_bytes(arr)
}
