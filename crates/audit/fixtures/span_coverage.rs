//! Fixture: an operator module that opens no profiling span.
pub fn bogus_sort(input: &mut [u64]) {
    input.sort_unstable();
}
