//! Fixture: an allow without a reason is itself a violation.
pub fn decode(bytes: &[u8]) -> u8 {
    *bytes.first().unwrap() // audit:allow(panic-free)
}
