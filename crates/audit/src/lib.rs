//! `wl-audit`: an offline invariant checker for the write-limited
//! engine's counting, WAL, and panic disciplines.
//!
//! The engine's correctness rests on conventions the compiler cannot
//! see: simulated device counters mutate only inside `pmem-sim`'s
//! accounting files, `*_uncounted` escape hatches appear only where
//! results leave the cost model, the WAL follows append→fsync→apply,
//! recovery and exec hot paths never panic, and every operator module
//! opens a profiling span. This crate enforces them with a hand-rolled
//! token-level scanner (no `syn`; the build is offline and
//! dependency-free) and file:line diagnostics.
//!
//! Run it with `cargo run --release -q -p wl-audit` from the workspace
//! root; it exits nonzero if any rule fires. Suppress a finding at the
//! site with `// audit:allow(<rule>) <reason>`.

pub mod lexer;
pub mod rules;

pub use rules::Diagnostic;

use std::fs;
use std::path::{Path, PathBuf};

/// Lexes one file's source and runs every rule over it. `rel` is the
/// workspace-relative path; zone membership is decided from it.
pub fn scan_source(rel: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(source);
    rules::check(rel, &lexed)
}

/// True for paths the walker should not descend into or scan: build
/// output, audit fixtures (deliberately bad), golden files, the
/// vendored shim crates, and `*_tests.rs` siblings (test-only code
/// split out of panic-free zones).
fn skip(rel: &str) -> bool {
    rel.contains("/target/")
        || rel.starts_with("target/")
        || rel.contains("/fixtures/")
        || rel.contains("/golden/")
        || rel.contains("crates/shims/")
        || rel.ends_with("_tests.rs")
}

/// Recursively collects `.rs` files under `dir`, relative to `root`.
fn collect(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if skip(&rel_str) {
            continue;
        }
        if path.is_dir() {
            collect(root, &path, out);
        } else if rel_str.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Walks the workspace source trees (`crates/`, `examples/`, `tests/`)
/// and returns every diagnostic, sorted by file then line.
pub fn scan_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut files = Vec::new();
    for top in ["crates", "examples", "tests"] {
        collect(root, &root.join(top), &mut files);
    }
    let mut diags = Vec::new();
    for path in &files {
        let Ok(source) = fs::read_to_string(path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        diags.extend(scan_source(&rel, &source));
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    diags
}

/// Locates the workspace root: walks up from `start` to the first
/// directory holding a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skips_fixtures_tests_and_shims() {
        assert!(skip("crates/audit/fixtures/panic_free.rs"));
        assert!(skip("crates/db/src/wal_tests.rs"));
        assert!(skip("crates/shims/rand/src/lib.rs"));
        assert!(skip("target/debug/build/foo.rs"));
        assert!(!skip("crates/db/src/wal.rs"));
    }

    #[test]
    fn clean_source_scans_clean() {
        let diags = scan_source(
            "crates/db/src/wal.rs",
            "pub fn frame(buf: &[u8]) -> Option<u8> { buf.first().copied() }\n",
        );
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn finds_this_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates/pmem-sim").is_dir());
    }
}
