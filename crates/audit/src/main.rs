//! CLI entry point: scan the workspace, print diagnostics, exit
//! nonzero if any rule fired. Intended to run as a CI gate:
//! `cargo run --release -q -p wl-audit`.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let cwd = std::env::current_dir().unwrap_or_else(|_| Path::new(".").to_path_buf());
    let Some(root) = wl_audit::find_workspace_root(&cwd) else {
        eprintln!("wl-audit: no workspace root found above {}", cwd.display());
        return ExitCode::from(2);
    };
    let diags = wl_audit::scan_workspace(&root);
    if diags.is_empty() {
        println!("wl-audit: workspace clean");
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    println!(
        "wl-audit: {} violation{} (suppress a site with `// audit:allow(<rule>) <reason>`)",
        diags.len(),
        if diags.len() == 1 { "" } else { "s" }
    );
    ExitCode::FAILURE
}
