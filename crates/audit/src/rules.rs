//! The audit rules: project disciplines no compiler checks, enforced
//! over the token stream with file:line diagnostics.
//!
//! | rule id         | discipline                                                      |
//! |-----------------|-----------------------------------------------------------------|
//! | `counted-io`    | device counters mutate only in `pmem-sim`'s accounting files    |
//! | `ledger-only`   | `Metrics::add_*` charges only in metrics.rs/layer.rs/pages.rs; shard merges only in `metrics.rs` |
//! | `uncounted-api` | `*_uncounted` escape hatches only at delivery/checkpoint sites  |
//! | `wal-order`     | append → fsync → apply; no state mutation before the WAL append |
//! | `panic-free`    | no `unwrap`/`expect`/`panic!`/`unreachable!` in recovery zones  |
//! | `span-coverage` | every exec operator module opens a profiling span               |
//!
//! Any diagnostic can be suppressed at the site with
//! `// audit:allow(<rule>) <reason>` on the same line or the line above;
//! an allow without a reason is itself a violation (`allow-reason`).

use crate::lexer::{strip_cfg_test, Allow, Lexed, Tok, TokKind};

/// Rule id: counted-I/O discipline.
pub const COUNTED_IO: &str = "counted-io";
/// Rule id: ledger-only hot-path accounting.
pub const LEDGER_ONLY: &str = "ledger-only";
/// Rule id: uncounted-API audit.
pub const UNCOUNTED_API: &str = "uncounted-api";
/// Rule id: WAL append→fsync→apply ordering.
pub const WAL_ORDER: &str = "wal-order";
/// Rule id: panic-free zones.
pub const PANIC_FREE: &str = "panic-free";
/// Rule id: operator span coverage.
pub const SPAN_COVERAGE: &str = "span-coverage";
/// Rule id: malformed allow comments.
pub const ALLOW_REASON: &str = "allow-reason";

/// One violation, pointing at a file and 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Rule id (one of the constants above).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Runs every rule over one lexed file and applies the allow comments.
pub fn check(rel: &str, lexed: &Lexed) -> Vec<Diagnostic> {
    let toks = strip_cfg_test(&lexed.toks);
    let mut diags = Vec::new();
    rule_counted_io(rel, &toks, &mut diags);
    rule_ledger_only(rel, &toks, &mut diags);
    rule_uncounted_api(rel, &toks, &mut diags);
    rule_wal_order(rel, &toks, &mut diags);
    rule_panic_free(rel, &toks, &mut diags);
    rule_span_coverage(rel, &toks, &mut diags);
    apply_allows(rel, &lexed.allows, diags)
}

/// True if token `i` is a method call named `name`: `. name (`.
fn is_method_call(toks: &[Tok], i: usize, name: &str) -> bool {
    toks[i].kind == TokKind::Ident
        && toks[i].text == name
        && i > 0
        && toks[i - 1].text == "."
        && toks.get(i + 1).is_some_and(|t| t.text == "(")
}

/// True if token `i` is any call of `name`: `name (`, method or free.
fn is_call(toks: &[Tok], i: usize, name: &str) -> bool {
    toks[i].kind == TokKind::Ident
        && toks[i].text == name
        && toks.get(i + 1).is_some_and(|t| t.text == "(")
}

// ---------------------------------------------------------------------
// counted-io
// ---------------------------------------------------------------------

/// Atomic read-modify-write methods that mutate a counter in place.
const ATOMIC_MUTATORS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Receiver names that denote simulated device counters. Exact matches
/// plus the `cl_`-prefixed spellings; deliberately narrow so unrelated
/// atomics (task indices, file ids, engine metrics) stay out of scope.
fn is_counter_receiver(name: &str) -> bool {
    matches!(
        name,
        "reads" | "writes" | "calls" | "cl_reads" | "cl_writes" | "software_ps" | "software_ns"
    ) || name.contains("cl_read")
        || name.contains("cl_write")
}

/// Counted-I/O discipline: inside `pmem-sim`, atomic mutation is the
/// privilege of `metrics.rs`, `span.rs`, and `pool.rs` alone; anywhere
/// else in the workspace, atomics whose receiver is named like a device
/// counter are shadow accounting and get flagged.
fn rule_counted_io(rel: &str, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    let in_sim = rel.contains("crates/pmem-sim/src/");
    let sim_privileged = ["metrics.rs", "span.rs", "pool.rs"]
        .iter()
        .any(|f| rel.ends_with(f));
    for i in 0..toks.len() {
        let text = toks[i].text.as_str();
        let is_rmw = ATOMIC_MUTATORS.contains(&text) && is_method_call(toks, i, text);
        let is_store = text == "store" && is_method_call(toks, i, "store");
        if !(is_rmw || is_store) {
            continue;
        }
        if in_sim && !sim_privileged {
            // `.store(` has too many non-atomic uses to ban wholesale
            // even inside the simulator; the RMW mutators are bans.
            if is_store {
                continue;
            }
            diags.push(Diagnostic {
                file: rel.to_string(),
                line: toks[i].line,
                rule: COUNTED_IO,
                msg: format!(
                    "atomic `{}` outside pmem-sim's accounting files (metrics.rs/span.rs/pool.rs); \
                     route counter mutations through the Metrics API",
                    toks[i].text
                ),
            });
        } else if !in_sim {
            let receiver =
                if i >= 2 && toks[i - 1].text == "." && toks[i - 2].kind == TokKind::Ident {
                    toks[i - 2].text.as_str()
                } else {
                    ""
                };
            if is_counter_receiver(receiver) {
                diags.push(Diagnostic {
                    file: rel.to_string(),
                    line: toks[i].line,
                    rule: COUNTED_IO,
                    msg: format!(
                        "direct mutation of device counter `{receiver}` outside pmem-sim; \
                         simulated counters may only change via the Metrics API"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// ledger-only
// ---------------------------------------------------------------------

/// The counter-charging entry points of the sharded accounting spine.
const LEDGER_ENTRY_POINTS: &[&str] = &["add_reads", "add_writes", "add_software_ns", "add_calls"];

/// The simulator files that legitimately charge the device: the ledger
/// itself and the two persistence layers that move cachelines. Anything
/// else in pmem-sim (spans, devices, pools) observes, never charges.
const LEDGER_CHARGE_FILES: &[&str] = &[
    "crates/pmem-sim/src/metrics.rs",
    "crates/pmem-sim/src/layer.rs",
    "crates/pmem-sim/src/pages.rs",
];

/// Ledger-only discipline (the sharded-accounting refactor's contract):
/// `Metrics::add_*` is the charge API of the simulator's persistence
/// layers — callable only from the files in [`LEDGER_CHARGE_FILES`] —
/// and `merge_shard`, the bulk publication of a thread shard into the
/// shared bank, belongs to `metrics.rs` alone. Everything else,
/// including the rest of pmem-sim, observes counters through snapshots
/// and thread ledgers; it never charges or publishes them directly.
fn rule_ledger_only(rel: &str, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    let in_charge_file = LEDGER_CHARGE_FILES.iter().any(|f| rel.ends_with(f));
    let in_metrics = rel.contains("crates/pmem-sim/src/") && rel.ends_with("metrics.rs");
    for i in 0..toks.len() {
        let text = toks[i].text.as_str();
        if !in_charge_file && LEDGER_ENTRY_POINTS.contains(&text) && is_method_call(toks, i, text) {
            diags.push(Diagnostic {
                file: rel.to_string(),
                line: toks[i].line,
                rule: LEDGER_ONLY,
                msg: format!(
                    "`.{text}(` outside the simulator's charge files; only \
                     metrics.rs, layer.rs, and pages.rs charge the device — \
                     measured code observes counters through snapshots and \
                     thread ledgers"
                ),
            });
        }
        if !in_metrics && text == "merge_shard" && is_call(toks, i, "merge_shard") {
            diags.push(Diagnostic {
                file: rel.to_string(),
                line: toks[i].line,
                rule: LEDGER_ONLY,
                msg: "shard publication (`merge_shard`) is internal to pmem-sim's \
                      metrics.rs; call pmem_sim::flush_thread_accounting() at a \
                      flush point instead"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// uncounted-api
// ---------------------------------------------------------------------

/// Paths allowed to call `*_uncounted`: the simulator that defines them,
/// harness/bench/test crates, and the documented result-delivery and
/// checkpoint sites.
const UNCOUNTED_ALLOWED_DIRS: &[&str] = &[
    "crates/pmem-sim/",
    "crates/bench/",
    "crates/audit/",
    "examples/",
    "tests/",
];
const UNCOUNTED_ALLOWED_FILES: &[&str] = &[
    "crates/planner/src/lower.rs", // result delivery to the client
    "crates/planner/src/naive.rs", // golden oracle, outside the cost model
    "crates/db/src/stream.rs",     // batch hand-off to the client
    "crates/db/src/database.rs",   // checkpoint/recovery staging
];

/// Uncounted-API audit: calls to the `*_uncounted` escape hatches are
/// only legitimate where results leave the cost model (delivery,
/// checkpoints, golden oracles) or in harness code.
fn rule_uncounted_api(rel: &str, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    if UNCOUNTED_ALLOWED_DIRS.iter().any(|d| rel.contains(d))
        || UNCOUNTED_ALLOWED_FILES.iter().any(|f| rel.ends_with(f))
    {
        return;
    }
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident
            && toks[i].text.ends_with("_uncounted")
            && toks.get(i + 1).is_some_and(|t| t.text == "(")
        {
            diags.push(Diagnostic {
                file: rel.to_string(),
                line: toks[i].line,
                rule: UNCOUNTED_API,
                msg: format!(
                    "`{}` call outside the whitelisted delivery/checkpoint sites; \
                     measured paths must charge the simulated device",
                    toks[i].text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// wal-order
// ---------------------------------------------------------------------

/// Catalog-mutation calls that apply state in `database.rs`.
const STATE_MUTATORS: &[&str] = &["install_table", "add_table", "remove"];

/// WAL ordering. Two checks:
///
/// * in `db/src/database.rs`, a function that appends to the log (a
///   `.log(…)` or `.append(…)` method call) must not apply state (an
///   [`STATE_MUTATORS`] call) before the append;
/// * in any `db/src` file, a function that `try_append`s through the
///   fault-injectable layer must `fsync` afterwards — durability is
///   append **then** fsync, never append alone.
fn rule_wal_order(rel: &str, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    if !rel.contains("crates/db/src/") {
        return;
    }
    let is_database = rel.ends_with("database.rs");
    for (_name, body) in functions(toks) {
        if is_database {
            let log_at = (0..body.len())
                .find(|&i| is_method_call(body, i, "log") || is_method_call(body, i, "append"));
            if let Some(log_at) = log_at {
                for i in 0..log_at {
                    if STATE_MUTATORS.iter().any(|m| is_call(body, i, m)) {
                        diags.push(Diagnostic {
                            file: rel.to_string(),
                            line: body[i].line,
                            rule: WAL_ORDER,
                            msg: format!(
                                "`{}` applies state before the WAL append in the same function; \
                                 the discipline is append → fsync → apply",
                                body[i].text
                            ),
                        });
                    }
                }
            }
        }
        if let Some(last_append) = (0..body.len())
            .rev()
            .find(|&i| is_method_call(body, i, "try_append"))
        {
            let fsynced = (last_append..body.len()).any(|i| is_method_call(body, i, "fsync"));
            if !fsynced {
                diags.push(Diagnostic {
                    file: rel.to_string(),
                    line: body[last_append].line,
                    rule: WAL_ORDER,
                    msg: "`try_append` without a following `fsync` in the same function; \
                          an unfsynced append is not durable and must not be acknowledged"
                        .to_string(),
                });
            }
        }
    }
}

/// Splits the token stream into `fn` bodies (nested functions are
/// reported both inside their parent and on their own).
fn functions(toks: &[Tok]) -> Vec<(String, &[Tok])> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "fn" && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let name = toks[i + 1].text.clone();
            // Walk to the body `{` (or a `;` for a bodyless decl).
            let mut j = i + 2;
            let mut depth = 0usize;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    "{" if depth == 0 => break,
                    ";" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.text == "{") {
                let start = j;
                let mut brace = 0usize;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "{" => brace += 1,
                        "}" => {
                            brace -= 1;
                            if brace == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                out.push((name, &toks[start..j.min(toks.len())]));
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------
// panic-free
// ---------------------------------------------------------------------

/// Files that must never panic: WAL/checkpoint framing and recovery.
const PANIC_ZONE_FILES: &[&str] = &[
    "crates/db/src/wal.rs",
    "crates/db/src/durable.rs",
    "crates/db/src/database.rs",
];
/// Directories that must never panic: the exec hot paths.
const PANIC_ZONE_DIRS: &[&str] = &[
    "crates/core/src/sort/",
    "crates/core/src/join/",
    "crates/core/src/agg/",
];

/// Panic-free zones: recovery code runs on disk garbage and hot paths
/// run under worker pools, so both must surface failures as typed
/// errors, never as unwinding.
fn rule_panic_free(rel: &str, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    let in_zone = PANIC_ZONE_FILES.iter().any(|f| rel.ends_with(f))
        || PANIC_ZONE_DIRS.iter().any(|d| rel.contains(d));
    if !in_zone {
        return;
    }
    for i in 0..toks.len() {
        if is_method_call(toks, i, "unwrap") || is_method_call(toks, i, "expect") {
            diags.push(Diagnostic {
                file: rel.to_string(),
                line: toks[i].line,
                rule: PANIC_FREE,
                msg: format!(
                    "`.{}()` in a panic-free zone; convert to a typed error \
                     (StorageError/DdlError) or restructure to be infallible",
                    toks[i].text
                ),
            });
        }
        let is_panic_macro = matches!(
            toks[i].text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && toks[i].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.text == "!");
        if is_panic_macro {
            diags.push(Diagnostic {
                file: rel.to_string(),
                line: toks[i].line,
                rule: PANIC_FREE,
                msg: format!("`{}!` in a panic-free zone", toks[i].text),
            });
        }
    }
}

// ---------------------------------------------------------------------
// span-coverage
// ---------------------------------------------------------------------

/// Span coverage: every exec operator module (a sort/join/agg algorithm
/// file) must open at least one profiling span, so `EXPLAIN ANALYZE`
/// and `repro --profile` can attribute its traffic. `mod.rs` and
/// `common.rs` are dispatch/shared-helper files, not operators.
fn rule_span_coverage(rel: &str, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    let operator_module = PANIC_ZONE_DIRS.iter().any(|d| rel.contains(d))
        && !rel.ends_with("mod.rs")
        && !rel.ends_with("common.rs");
    if !operator_module {
        return;
    }
    let opens_span =
        (0..toks.len()).any(|i| is_call(toks, i, "span") || is_call(toks, i, "span_with"));
    if !opens_span {
        diags.push(Diagnostic {
            file: rel.to_string(),
            line: 1,
            rule: SPAN_COVERAGE,
            msg: "operator module never opens a profiling span \
                  (pmem_sim::span::span/span_with); its traffic is invisible to profiles"
                .to_string(),
        });
    }
}

// ---------------------------------------------------------------------
// allow filtering
// ---------------------------------------------------------------------

/// Drops diagnostics covered by a same-line or line-above allow comment
/// of the matching rule; allows without a reason become diagnostics
/// themselves.
fn apply_allows(rel: &str, allows: &[Allow], diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = diags
        .into_iter()
        .filter(|d| {
            !allows.iter().any(|a| {
                a.rule == d.rule
                    && !a.reason.is_empty()
                    && (a.line == d.line || a.line + 1 == d.line)
            })
        })
        .collect();
    for a in allows {
        if a.reason.is_empty() {
            out.push(Diagnostic {
                file: rel.to_string(),
                line: a.line,
                rule: ALLOW_REASON,
                msg: format!(
                    "audit:allow({}) without a reason; state why the rule does not apply here",
                    a.rule
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}
