//! A minimal, dependency-free Rust tokenizer — just enough lexical
//! fidelity for the audit rules.
//!
//! The scanner does not parse Rust; it produces a line-numbered stream
//! of identifier and punctuation tokens with everything that could hide
//! a false match stripped out: line and (nested) block comments, string
//! literals (plain, byte, and raw with any number of `#`s), character
//! literals, lifetimes, and numeric literals. Comments are not entirely
//! discarded — `// audit:allow(<rule>) <reason>` escape comments are
//! collected separately so the rule engine can honor them.
//!
//! A post-pass ([`strip_cfg_test`]) removes every item annotated
//! `#[cfg(test)]` (or any `cfg` attribute mentioning `test` without a
//! `not`), so the rules see only code that ships in release binaries.

/// Token classification — the rules only distinguish words from
/// punctuation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// A single punctuation character.
    Punct,
}

/// One token with the 1-based source line it starts on.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token text (one char for punctuation).
    pub text: String,
    /// 1-based line number.
    pub line: u32,
    /// Word or punctuation.
    pub kind: TokKind,
}

/// A parsed `// audit:allow(<rule>) <reason>` escape comment. It
/// suppresses diagnostics of `rule` on its own line and the line
/// directly below it (so it can trail the flagged code or sit above it).
#[derive(Clone, Debug)]
pub struct Allow {
    /// Line the comment appears on.
    pub line: u32,
    /// Rule id inside the parentheses.
    pub rule: String,
    /// Free-text justification after the closing parenthesis.
    pub reason: String,
}

/// Output of [`lex`]: the token stream plus any allow directives.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Escape comments in source order.
    pub allows: Vec<Allow>,
}

/// Tokenizes `src`. Never fails: unterminated literals simply end the
/// stream (the compiler rejects such files anyway; the auditor only runs
/// on code that builds).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if let Some(allow) = parse_allow(&text, line) {
                out.allows.push(allow);
            }
            continue;
        }
        // Nested block comment.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            continue;
        }
        // Raw / byte string prefixes: r"..", r#".."#, b"..", br#".."#.
        if c == 'r' || c == 'b' {
            if let Some(next) = try_string_prefix(&chars, i, &mut line) {
                i = next;
                continue;
            }
        }
        // Plain string literal.
        if c == '"' {
            i = skip_string(&chars, i + 1, &mut line);
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            i = skip_char_or_lifetime(&chars, i, &mut line);
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.toks.push(Tok {
                text: chars[start..i].iter().collect(),
                line,
                kind: TokKind::Ident,
            });
            continue;
        }
        // Numeric literal (not emitted; consumed so suffixes like
        // `1u64` don't surface as identifiers).
        if c.is_ascii_digit() {
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            }
            continue;
        }
        out.toks.push(Tok {
            text: c.to_string(),
            line,
            kind: TokKind::Punct,
        });
        i += 1;
    }
    out
}

/// Consumes a raw or byte string starting at `i` if one is there;
/// returns the index past it, or `None` if `i` is an ordinary ident.
fn try_string_prefix(chars: &[char], i: usize, line: &mut u32) -> Option<usize> {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        match chars.get(j) {
            Some('\'') => {
                // Byte char literal b'x' — always a char, never a
                // lifetime.
                return Some(skip_char_literal(chars, j + 1, line));
            }
            Some('"') => return Some(skip_string(chars, j + 1, line)),
            Some('r') => j += 1,
            _ => return None,
        }
    } else {
        j += 1; // past 'r'
    }
    // Here the prefix is `r` or `br`: count hashes, then require `"`.
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    // Raw string: no escapes; ends at `"` followed by `hashes` hashes.
    while j < chars.len() {
        if chars[j] == '\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if chars[j] == '"' && chars[j + 1..].iter().take_while(|&&h| h == '#').count() >= hashes {
            return Some(j + 1 + hashes);
        }
        j += 1;
    }
    Some(j)
}

/// Consumes a (possibly multi-line) string body starting just past the
/// opening quote; returns the index past the closing quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consumes a char-literal body starting just past the opening quote.
fn skip_char_literal(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Distinguishes `'a'` (char) from `'a` (lifetime) at a `'`.
fn skip_char_or_lifetime(chars: &[char], i: usize, line: &mut u32) -> usize {
    match (chars.get(i + 1), chars.get(i + 2)) {
        // Escaped char: '\n', '\'', '\u{..}' …
        (Some('\\'), _) => skip_char_literal(chars, i + 1, line),
        // Exactly one char between quotes: 'x'.
        (Some(_), Some('\'')) => i + 3,
        // Otherwise a lifetime: consume the quote and the ident.
        _ => {
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            j
        }
    }
}

/// Parses `audit:allow(<rule>) <reason>` out of a line comment.
fn parse_allow(comment: &str, line: u32) -> Option<Allow> {
    let at = comment.find("audit:allow(")?;
    let rest = &comment[at + "audit:allow(".len()..];
    let close = rest.find(')')?;
    Some(Allow {
        line,
        rule: rest[..close].trim().to_string(),
        reason: rest[close + 1..].trim().to_string(),
    })
}

/// Removes every item guarded by a `cfg` attribute that mentions `test`
/// (and does not mention `not`), so rules never fire on test-only code.
/// The skipped item is the attribute's target: any stacked attributes
/// after it, then one `mod`/`fn`/`use`/… terminated by a top-level `;`
/// or a balanced `{…}` block.
pub fn strip_cfg_test(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).is_some_and(|t| t.text == "[") {
            let (end, is_test) = scan_attr(toks, i + 1);
            if is_test {
                i = skip_item(toks, end);
                continue;
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Scans the bracketed attribute starting at its `[`; returns the index
/// past the closing `]` and whether it is a test-only `cfg`.
fn scan_attr(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut j = open;
    let (mut has_cfg, mut has_test, mut has_not) = (false, false, false);
    while j < toks.len() {
        match toks[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            "cfg" => has_cfg = true,
            "test" => has_test = true,
            "not" => has_not = true,
            _ => {}
        }
        j += 1;
    }
    (j, has_cfg && has_test && !has_not)
}

/// Skips one item starting at `i` (stacked attributes included);
/// returns the index past it.
fn skip_item(toks: &[Tok], mut i: usize) -> usize {
    while i < toks.len() && toks[i].text == "#" && toks.get(i + 1).is_some_and(|t| t.text == "[") {
        let (end, _) = scan_attr(toks, i + 1);
        i = end;
    }
    let mut brace = 0usize;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => brace += 1,
            "}" => {
                brace -= 1;
                if brace == 0 {
                    return i + 1;
                }
            }
            ";" if brace == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_tokenize() {
        let src = r##"
            // unwrap() in a comment
            /* panic! in /* a nested */ block */
            let s = "unwrap() inside a string";
            let r = r#"expect("x") inside a raw string"#;
            let b = b"fetch_add";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
        assert!(!ids.contains(&"fetch_add".to_string()));
    }

    #[test]
    fn lifetimes_and_char_literals_lex_cleanly() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = 'x'; let n = '\\n'; c }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        // The lifetime name is consumed, not surfaced as an ident.
        assert_eq!(ids.iter().filter(|s| s.as_str() == "a").count(), 0);
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "a\n/* two\nlines */\nb";
        let lexed = lex(src);
        assert_eq!(lexed.toks[0].line, 1);
        assert_eq!(lexed.toks[1].line, 4);
    }

    #[test]
    fn allow_comments_are_collected() {
        let src = "x(); // audit:allow(panic-free) FFI boundary, cannot unwind\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].rule, "panic-free");
        assert_eq!(lexed.allows[0].reason, "FFI boundary, cannot unwind");
        assert_eq!(lexed.allows[0].line, 1);
    }

    #[test]
    fn cfg_test_items_are_stripped() {
        let src = r#"
            fn shipping() { ship(); }
            #[cfg(test)]
            mod tests {
                fn helper() { hidden(); }
            }
            fn also_shipping() { also(); }
        "#;
        let lexed = lex(src);
        let kept: Vec<String> = strip_cfg_test(&lexed.toks)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect();
        assert!(kept.contains(&"ship".to_string()));
        assert!(kept.contains(&"also".to_string()));
        assert!(!kept.contains(&"hidden".to_string()));
    }

    #[test]
    fn cfg_not_test_items_survive() {
        let src = "#[cfg(not(test))] fn shipping() { ship(); }";
        let lexed = lex(src);
        let kept: Vec<String> = strip_cfg_test(&lexed.toks)
            .into_iter()
            .map(|t| t.text)
            .collect();
        assert!(kept.contains(&"ship".to_string()));
    }

    #[test]
    fn stacked_attributes_on_test_mods_are_skipped_whole() {
        let src = r#"
            #[cfg(test)]
            #[path = "x_tests.rs"]
            mod tests;
            fn live() { keep(); }
        "#;
        let lexed = lex(src);
        let kept: Vec<String> = strip_cfg_test(&lexed.toks)
            .into_iter()
            .map(|t| t.text)
            .collect();
        assert!(kept.contains(&"keep".to_string()));
        assert!(!kept.contains(&"tests".to_string()));
    }
}
