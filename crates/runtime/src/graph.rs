//! The control-flow graph of §3.1.
//!
//! Nodes are either *collections* or *API calls*
//! (`split`/`partition`/`filter`/`merge`); edges run from a call's input
//! collections to the call, and from the call to its output collections
//! (Fig. 4). Declaring a collection does not materialize it — the graph
//! is the blueprint the runtime walks when a deferred collection is
//! accessed and must be (re)constructed from its oldest materialized
//! ancestors.

use std::collections::HashMap;

/// Identifier of a collection node (its unique name).
pub type CollectionId = String;

/// Index of an API-call node within the graph.
pub type CallId = usize;

/// Materialization status of a collection (§3.1, Listing 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CStatus {
    /// Purely in-memory collection.
    Memory,
    /// Present on persistent memory.
    Materialized,
    /// Declared but not produced; reconstructible from the graph.
    Deferred,
}

/// One of the four §3.1 API calls, with its call-specific annotations.
#[derive(Clone, Debug, PartialEq)]
pub enum ApiCall {
    /// `split(T, n, Tl, Th)`: split `T` at position `n`.
    Split {
        /// Split position (records).
        at: u64,
    },
    /// `partition(T, h(), k, ⟨Ti⟩, ⟨si⟩)`: partition into `k` outputs.
    Partition {
        /// Number of partitions.
        k: usize,
    },
    /// `filter(T, p(), f, Tp)`: filter with expected selectivity `f`.
    Filter {
        /// Expected output size as a fraction of the input, in `[0, 1]`.
        selectivity: f64,
    },
    /// `merge(Tl, Tr, m(), T)`: merge two collections.
    Merge,
}

/// An API-call node: the call plus its input/output collection names.
#[derive(Clone, Debug)]
pub struct CallNode {
    /// The call and its parameters.
    pub call: ApiCall,
    /// Input collection names.
    pub inputs: Vec<CollectionId>,
    /// Output collection names.
    pub outputs: Vec<CollectionId>,
}

/// Per-collection bookkeeping.
#[derive(Clone, Debug)]
pub struct CollectionNode {
    /// Materialization status.
    pub status: CStatus,
    /// Estimated (or actual) size in buffer units.
    pub size_buffers: f64,
    /// The call that produces this collection, if any.
    pub produced_by: Option<CallId>,
    /// Accumulated buffers read from this collection so far (the running
    /// sum §3.1's optimization rules consult).
    pub accumulated_reads: f64,
    /// Number of times the collection has been fully processed (scanned).
    pub times_processed: u32,
    /// Marked when the collection's results are immediately appended to
    /// another collection (the process-to-append rule's trigger).
    pub append_only: bool,
}

/// The control-flow graph: collections, calls, and their wiring.
#[derive(Debug, Default)]
pub struct Graph {
    collections: HashMap<CollectionId, CollectionNode>,
    calls: Vec<CallNode>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a collection with the given status and size estimate (in
    /// buffers). Re-declaring a name is an error — unique identifiers are
    /// the runtime's one assumption (§3.1).
    ///
    /// # Panics
    /// Panics if `name` was already declared.
    pub fn declare(&mut self, name: impl Into<CollectionId>, status: CStatus, size_buffers: f64) {
        let name = name.into();
        let prev = self.collections.insert(
            name.clone(),
            CollectionNode {
                status,
                size_buffers,
                produced_by: None,
                accumulated_reads: 0.0,
                times_processed: 0,
                append_only: false,
            },
        );
        assert!(prev.is_none(), "collection `{name}` declared twice");
    }

    /// Records an API call, wiring inputs and outputs.
    ///
    /// # Panics
    /// Panics if any referenced collection is undeclared, or an output is
    /// already produced by another call.
    pub fn record_call(&mut self, call: ApiCall, inputs: &[&str], outputs: &[&str]) -> CallId {
        let id = self.calls.len();
        for name in inputs.iter().chain(outputs.iter()) {
            assert!(
                self.collections.contains_key(*name),
                "collection `{name}` not declared"
            );
        }
        for out in outputs {
            let node = self.collections.get_mut(*out).expect("declared above");
            assert!(
                node.produced_by.is_none(),
                "collection `{out}` already has a producer"
            );
            node.produced_by = Some(id);
        }
        self.calls.push(CallNode {
            call,
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
        });
        id
    }

    /// Collection node accessor.
    ///
    /// # Panics
    /// Panics if `name` is not declared.
    pub fn collection(&self, name: &str) -> &CollectionNode {
        self.collections
            .get(name)
            .unwrap_or_else(|| panic!("collection `{name}` not declared"))
    }

    /// Mutable collection node accessor.
    ///
    /// # Panics
    /// Panics if `name` is not declared.
    pub fn collection_mut(&mut self, name: &str) -> &mut CollectionNode {
        self.collections
            .get_mut(name)
            .unwrap_or_else(|| panic!("collection `{name}` not declared"))
    }

    /// Call node accessor.
    pub fn call(&self, id: CallId) -> &CallNode {
        &self.calls[id]
    }

    /// True if `name` has been declared.
    pub fn is_declared(&self, name: &str) -> bool {
        self.collections.contains_key(name)
    }

    /// Sibling outputs of the call producing `name` (other partitions of
    /// the same `partition()`, etc.).
    pub fn siblings(&self, name: &str) -> Vec<CollectionId> {
        match self.collection(name).produced_by {
            Some(id) => self.calls[id]
                .outputs
                .iter()
                .filter(|o| o.as_str() != name)
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    /// The reconstruction plan for `name`: the chain of calls from its
    /// oldest non-materialized ancestor down to the call that produces
    /// it, in application order. Empty when `name` is already
    /// materialized or is a source.
    pub fn reconstruction_plan(&self, name: &str) -> Vec<CallId> {
        let mut plan = Vec::new();
        self.walk_up(name, &mut plan);
        plan.reverse();
        plan
    }

    fn walk_up(&self, name: &str, plan: &mut Vec<CallId>) {
        let node = self.collection(name);
        if node.status == CStatus::Materialized || node.status == CStatus::Memory {
            return; // reconstruction starts from materialized ancestors
        }
        if let Some(call_id) = node.produced_by {
            plan.push(call_id);
            for input in &self.calls[call_id].inputs.clone() {
                self.walk_up(input, plan);
            }
        }
    }

    /// Estimated cost, in read units, of reconstructing `name` by
    /// re-applying its plan: the sum of the plan's input sizes (each
    /// input is fully scanned once; the runtime enforces that no input is
    /// scanned twice for one reconstruction, §3.1).
    pub fn reconstruction_read_cost(&self, name: &str) -> f64 {
        let plan = self.reconstruction_plan(name);
        let mut seen = std::collections::HashSet::new();
        let mut cost = 0.0;
        for id in plan {
            for input in &self.calls[id].inputs {
                if seen.insert(input.clone()) {
                    cost += self.collection(input).size_buffers;
                }
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the Fig. 4 graph: T, V partitioned 3-ways, pairwise merged
    /// into S.
    fn fig4() -> Graph {
        let mut g = Graph::new();
        g.declare("T", CStatus::Materialized, 300.0);
        g.declare("V", CStatus::Materialized, 3000.0);
        g.declare("S", CStatus::Materialized, 500.0);
        for i in 0..3 {
            g.declare(format!("T{i}"), CStatus::Deferred, 100.0);
            g.declare(format!("V{i}"), CStatus::Deferred, 1000.0);
        }
        g.record_call(ApiCall::Partition { k: 3 }, &["T"], &["T0", "T1", "T2"]);
        g.record_call(ApiCall::Partition { k: 3 }, &["V"], &["V0", "V1", "V2"]);
        g
    }

    #[test]
    fn fig4_reconstruction_walks_to_the_source() {
        let g = fig4();
        let plan = g.reconstruction_plan("V0");
        assert_eq!(plan.len(), 1);
        assert_eq!(g.call(plan[0]).inputs, vec!["V".to_string()]);
    }

    #[test]
    fn fig4_reconstruction_cost_is_the_source_scan() {
        let g = fig4();
        assert_eq!(g.reconstruction_read_cost("T0"), 300.0);
        assert_eq!(g.reconstruction_read_cost("V1"), 3000.0);
        // Materialized collections need no reconstruction.
        assert_eq!(g.reconstruction_read_cost("T"), 0.0);
    }

    #[test]
    fn siblings_are_the_other_partitions() {
        let g = fig4();
        let mut sib = g.siblings("T1");
        sib.sort();
        assert_eq!(sib, vec!["T0".to_string(), "T2".to_string()]);
        assert!(g.siblings("T").is_empty());
    }

    #[test]
    fn chained_deferral_accumulates_costs() {
        // T (mat) → filter → F (def) → split → A, B (def): producing B
        // re-applies filter then split, scanning T then F.
        let mut g = Graph::new();
        g.declare("T", CStatus::Materialized, 100.0);
        g.declare("F", CStatus::Deferred, 50.0);
        g.declare("A", CStatus::Deferred, 25.0);
        g.declare("B", CStatus::Deferred, 25.0);
        g.record_call(ApiCall::Filter { selectivity: 0.5 }, &["T"], &["F"]);
        g.record_call(ApiCall::Split { at: 25 }, &["F"], &["A", "B"]);
        let plan = g.reconstruction_plan("B");
        assert_eq!(plan.len(), 2);
        assert!(matches!(g.call(plan[0]).call, ApiCall::Filter { .. }));
        assert!(matches!(g.call(plan[1]).call, ApiCall::Split { .. }));
        assert_eq!(g.reconstruction_read_cost("B"), 150.0);
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_declaration_panics() {
        let mut g = Graph::new();
        g.declare("T", CStatus::Deferred, 1.0);
        g.declare("T", CStatus::Deferred, 1.0);
    }

    #[test]
    #[should_panic(expected = "already has a producer")]
    fn double_producer_panics() {
        let mut g = Graph::new();
        g.declare("T", CStatus::Materialized, 1.0);
        g.declare("X", CStatus::Deferred, 1.0);
        g.record_call(ApiCall::Filter { selectivity: 0.5 }, &["T"], &["X"]);
        g.record_call(ApiCall::Filter { selectivity: 0.9 }, &["T"], &["X"]);
    }
}
