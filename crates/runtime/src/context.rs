//! The operator context (`OpCtx`): the blueprint-recording and
//! decision-making half of §3.1's API.
//!
//! Each physical operator is assigned an operator context. During
//! `evaluate()` the operator *records* its computation through the four
//! API calls; during execution it *consults* the context on every
//! collection access: `assess()` decides whether a deferred collection
//! should be materialized (flipping its status), and
//! `reconstruction_plan()` (the paper's `produce()`) yields the chain of
//! calls that rebuilds it from materialized ancestors.

use crate::graph::{ApiCall, CStatus, CallId, Graph};
use crate::rules::{assess, Decision, Verdict};

/// Per-operator runtime context.
#[derive(Debug)]
pub struct OpCtx {
    graph: Graph,
    lambda: f64,
    name_counter: u64,
}

impl OpCtx {
    /// Creates a context for a medium with write/read ratio `lambda`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda >= 1.0, "write/read ratio must be >= 1");
        Self {
            graph: Graph::new(),
            lambda,
            name_counter: 0,
        }
    }

    /// The medium's write/read ratio.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Generates a unique collection identifier (Listing 2's
    /// `create_name()`).
    pub fn create_name(&mut self, prefix: &str) -> String {
        let id = self.name_counter;
        self.name_counter += 1;
        format!("{prefix}#{id}")
    }

    /// Declares a collection (Listing 1: status defaults to deferred at
    /// the call sites; pass explicitly here).
    pub fn declare(&mut self, name: &str, status: CStatus, size_buffers: f64) {
        self.graph.declare(name, status, size_buffers);
    }

    /// Records `split(T, n, Tl, Th)`.
    pub fn split(&mut self, input: &str, at: u64, lo: &str, hi: &str) -> CallId {
        self.graph
            .record_call(ApiCall::Split { at }, &[input], &[lo, hi])
    }

    /// Records `partition(T, h(), k, ⟨Ti⟩)`.
    ///
    /// # Panics
    /// Panics if `outputs.len() != k`.
    pub fn partition(&mut self, input: &str, k: usize, outputs: &[&str]) -> CallId {
        assert_eq!(outputs.len(), k, "partition arity mismatch");
        self.graph
            .record_call(ApiCall::Partition { k }, &[input], outputs)
    }

    /// Records `filter(T, p(), f, Tp)`.
    pub fn filter(&mut self, input: &str, selectivity: f64, output: &str) -> CallId {
        self.graph
            .record_call(ApiCall::Filter { selectivity }, &[input], &[output])
    }

    /// Records `merge(Tl, Tr, m(), T)`.
    pub fn merge(&mut self, left: &str, right: &str, output: &str) -> CallId {
        self.graph
            .record_call(ApiCall::Merge, &[left, right], &[output])
    }

    /// Marks a collection as feeding an immediate append (rule (c)).
    pub fn mark_append_only(&mut self, name: &str) {
        self.graph.collection_mut(name).append_only = true;
    }

    /// Notes that `name` was fully processed (scanned), accumulating the
    /// running read sum the rules consult.
    pub fn note_scan(&mut self, name: &str, buffers: f64) {
        let node = self.graph.collection_mut(name);
        node.times_processed += 1;
        node.accumulated_reads += buffers;
    }

    /// Updates a collection's size estimate with its actual size.
    pub fn set_size(&mut self, name: &str, buffers: f64) {
        self.graph.collection_mut(name).size_buffers = buffers;
    }

    /// Current status of a collection.
    pub fn status(&self, name: &str) -> CStatus {
        self.graph.collection(name).status
    }

    /// Assesses a deferred collection (Listing 1's `assess()`); on a
    /// materialize verdict the status flips so a later `open()` produces
    /// it. Non-deferred collections return their status unchanged.
    pub fn assess(&mut self, name: &str) -> Option<Verdict> {
        if self.graph.collection(name).status != CStatus::Deferred {
            return None;
        }
        let verdict = assess(&self.graph, name, self.lambda);
        if verdict.decision == Decision::Materialize {
            self.graph.collection_mut(name).status = CStatus::Materialized;
        }
        Some(verdict)
    }

    /// Records that a collection has been physically produced.
    pub fn mark_materialized(&mut self, name: &str) {
        self.graph.collection_mut(name).status = CStatus::Materialized;
    }

    /// The paper's `produce()` planning step: the call chain that
    /// rebuilds `name` from materialized ancestors.
    pub fn reconstruction_plan(&self, name: &str) -> Vec<CallId> {
        self.graph.reconstruction_plan(name)
    }

    /// Read-only access to the recorded control-flow graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    #[test]
    fn create_name_is_unique() {
        let mut ctx = OpCtx::new(15.0);
        let a = ctx.create_name("p");
        let b = ctx.create_name("p");
        assert_ne!(a, b);
    }

    #[test]
    fn assess_flips_status_on_materialize() {
        let mut ctx = OpCtx::new(2.0);
        ctx.declare("T", CStatus::Materialized, 300.0);
        ctx.declare("T0", CStatus::Deferred, 100.0);
        ctx.declare("T1", CStatus::Deferred, 100.0);
        ctx.partition("T", 2, &["T0", "T1"]);
        let v = ctx.assess("T0").expect("deferred");
        assert_eq!(v.decision, Decision::Materialize);
        assert_eq!(ctx.status("T0"), CStatus::Materialized);
        // Sibling now materializes via eager-partition.
        let v = ctx.assess("T1").expect("deferred");
        assert_eq!(v.rule, Rule::EagerPartition);
    }

    #[test]
    fn assess_skips_non_deferred() {
        let mut ctx = OpCtx::new(15.0);
        ctx.declare("T", CStatus::Materialized, 10.0);
        assert!(ctx.assess("T").is_none());
    }

    #[test]
    fn scans_accumulate_until_read_over_write_fires() {
        let mut ctx = OpCtx::new(15.0);
        ctx.declare("T", CStatus::Materialized, 300.0);
        let names: Vec<String> = (0..3).map(|i| format!("T{i}")).collect();
        for n in &names {
            ctx.declare(n, CStatus::Deferred, 100.0);
        }
        ctx.partition("T", 3, &[&names[0], &names[1], &names[2]]);

        // First access: Cm = 1500 > Cr(0) + Cc(300) → defer, rescan.
        assert_eq!(
            ctx.assess("T0").expect("deferred").decision,
            Decision::Defer
        );
        ctx.note_scan("T", 300.0);
        assert_eq!(
            ctx.assess("T1").expect("deferred").decision,
            Decision::Defer
        );
        ctx.note_scan("T", 300.0);
        ctx.note_scan("T", 300.0);
        ctx.note_scan("T", 300.0);
        // Cr = 1200, Cc = 300 ≥ Cm = 1500 → materialize.
        assert_eq!(
            ctx.assess("T2").expect("deferred").decision,
            Decision::Materialize
        );
    }

    #[test]
    fn split_and_merge_record_in_graph() {
        let mut ctx = OpCtx::new(15.0);
        ctx.declare("T", CStatus::Materialized, 100.0);
        ctx.declare("A", CStatus::Deferred, 50.0);
        ctx.declare("B", CStatus::Deferred, 50.0);
        ctx.declare("S", CStatus::Materialized, 100.0);
        ctx.split("T", 50, "A", "B");
        ctx.merge("A", "B", "S");
        assert_eq!(ctx.reconstruction_plan("B").len(), 1);
    }
}
