//! # wl-runtime — deferred-materialization runtime (§3.1)
//!
//! The paper's library support for write-limited algorithms: named
//! collections with `Memory`/`Materialized`/`Deferred` status, a
//! control-flow graph recorded through a four-call API
//! (`split`/`partition`/`filter`/`merge`), and the optimization rules
//! that decide — at run time, from tracked sizes and accumulated reads —
//! whether a deferred collection should be materialized or reconstructed
//! from its ancestors.
//!
//! ```
//! use wl_runtime::{CStatus, Decision, OpCtx};
//!
//! let mut ctx = OpCtx::new(15.0); // λ = 15
//! ctx.declare("T", CStatus::Materialized, 300.0);
//! ctx.declare("T0", CStatus::Deferred, 100.0);
//! ctx.declare("T1", CStatus::Deferred, 100.0);
//! ctx.declare("T2", CStatus::Deferred, 100.0);
//! ctx.partition("T", 3, &["T0", "T1", "T2"]);
//! // Deferring T0 saves 100·λ write units at a 300-read reconstruction:
//! assert_eq!(ctx.assess("T0").unwrap().decision, Decision::Defer);
//! ```

#![warn(missing_docs)]

pub mod context;
pub mod graph;
pub mod operator;
pub mod rules;

pub use context::OpCtx;
pub use graph::{ApiCall, CStatus, CallId, CollectionId, Graph};
pub use operator::{Operator, SgjBlueprint};
pub use rules::{plan_verdict, Decision, Rule, Verdict};
