//! The four §3.1 optimization rules that trigger (or veto)
//! materialization of deferred collections.
//!
//! * **multi-process** — a collection processed more times than the
//!   write-to-read ratio is worth materializing (segmented/hybrid
//!   algorithms).
//! * **eager-partition** — once one output of a `partition()` is
//!   materialized, all remaining outputs are materialized too, to
//!   amortize the partitioning scan (segmented/hybrid joins).
//! * **process-to-append** — results immediately appended to another
//!   collection are always deferred.
//! * **read-over-write** — materialize a deferred collection when its
//!   materialization cost `Cm` does not exceed the accumulated read cost
//!   `Cr` of its input plus the construction read cost `Cc`
//!   (lazy algorithms).

use crate::graph::{CStatus, Graph};

/// The materialization decision for a deferred collection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Produce and keep the collection on persistent memory.
    Materialize,
    /// Keep the collection deferred; reconstruct on access.
    Defer,
}

/// Which rule produced the decision (for explain-style introspection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// Processed more times than λ.
    MultiProcess,
    /// Sibling of an already-materialized partition output.
    EagerPartition,
    /// Immediately appended to another collection.
    ProcessToAppend,
    /// `Cm ≤ Cr + Cc` comparison.
    ReadOverWrite,
    /// No rule fired; the default is to defer.
    DefaultDefer,
}

/// A decision together with the rule that made it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Verdict {
    /// Materialize or defer.
    pub decision: Decision,
    /// The rule that fired.
    pub rule: Rule,
}

/// Assesses a deferred collection against the §3.1 rules, in the order
/// the paper presents them. `lambda` is the medium's write/read ratio.
pub fn assess(graph: &Graph, name: &str, lambda: f64) -> Verdict {
    let node = graph.collection(name);
    debug_assert_eq!(
        node.status,
        CStatus::Deferred,
        "assess only deferred collections"
    );

    // (c) process-to-append: always deferred, vetoes everything else.
    if node.append_only {
        return Verdict {
            decision: Decision::Defer,
            rule: Rule::ProcessToAppend,
        };
    }

    // (a) multi-process: repeated full processing beats the write cost
    // once the process count exceeds λ.
    if f64::from(node.times_processed) > lambda {
        return Verdict {
            decision: Decision::Materialize,
            rule: Rule::MultiProcess,
        };
    }

    // (b) eager-partition: a sibling partition is already materialized.
    let siblings = graph.siblings(name);
    if !siblings.is_empty()
        && siblings
            .iter()
            .any(|s| graph.collection(s).status == CStatus::Materialized)
    {
        return Verdict {
            decision: Decision::Materialize,
            rule: Rule::EagerPartition,
        };
    }

    // (d) read-over-write: Cm ≤ Cr + Cc → materialize.
    let cm = lambda * node.size_buffers;
    let cc = graph.reconstruction_read_cost(name);
    let cr: f64 = graph
        .reconstruction_plan(name)
        .iter()
        .flat_map(|&id| graph.call(id).inputs.iter())
        .map(|input| graph.collection(input).accumulated_reads)
        .sum();
    if cm <= cr + cc {
        return Verdict {
            decision: Decision::Materialize,
            rule: Rule::ReadOverWrite,
        };
    }

    Verdict {
        decision: Decision::Defer,
        rule: Rule::DefaultDefer,
    }
}

/// Plan-time application of the §3.1 rules to a *prospective* deferred
/// collection — the paper's runtime rules, evaluated statically from a
/// planner's estimates instead of from observed accesses.
///
/// `size_buffers` is the deferred collection's estimated size,
/// `source_buffers` the size of the input it would be reconstructed
/// from, and `expected_scans` how many times the plan above will process
/// it (e.g. the iteration count of the consuming join). The decision
/// mirrors [`assess`]: materializing costs `λ·size`; keeping it deferred
/// costs one reconstruction scan of the source per processing.
pub fn plan_verdict(
    size_buffers: f64,
    source_buffers: f64,
    expected_scans: f64,
    lambda: f64,
) -> Verdict {
    // (a) multi-process: more processings than λ always amortize the
    // write cost.
    if expected_scans > lambda {
        return Verdict {
            decision: Decision::Materialize,
            rule: Rule::MultiProcess,
        };
    }
    // (d) read-over-write, accumulated over the whole plan: deferral
    // re-reads the source on every scan; materialization pays λ·size
    // once plus one source scan to produce it, then reads the (smaller)
    // collection back on each scan.
    let defer_cost = expected_scans * source_buffers;
    let materialize_cost = lambda * size_buffers + source_buffers + expected_scans * size_buffers;
    if materialize_cost <= defer_cost {
        return Verdict {
            decision: Decision::Materialize,
            rule: Rule::ReadOverWrite,
        };
    }
    Verdict {
        decision: Decision::Defer,
        rule: Rule::DefaultDefer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ApiCall, CStatus, Graph};

    /// The §3.1 worked example: T of 300 buffers partitioned 3-ways with
    /// λ = 15; deferring T0 saves |T|/3 writes at the cost of |T| reads.
    fn example(lambda_reads_so_far: f64) -> Graph {
        let mut g = Graph::new();
        g.declare("T", CStatus::Materialized, 300.0);
        for i in 0..3 {
            g.declare(format!("T{i}"), CStatus::Deferred, 100.0);
        }
        g.record_call(ApiCall::Partition { k: 3 }, &["T"], &["T0", "T1", "T2"]);
        g.collection_mut("T").accumulated_reads = lambda_reads_so_far;
        g
    }

    #[test]
    fn paper_example_defers_t0_at_high_lambda() {
        // |T| < λ·|T|/3 ⇔ 3 < λ: with λ = 15 defer T0.
        let g = example(0.0);
        let v = assess(&g, "T0", 15.0);
        assert_eq!(v.decision, Decision::Defer);
    }

    #[test]
    fn paper_example_materializes_at_low_lambda() {
        // λ = 2: Cm = 200 ≤ Cc = 300 → materialize.
        let g = example(0.0);
        let v = assess(&g, "T0", 2.0);
        assert_eq!(v.decision, Decision::Materialize);
        assert_eq!(v.rule, Rule::ReadOverWrite);
    }

    #[test]
    fn accumulated_reads_flip_the_decision() {
        // Moving on to T1 after re-scanning T once: compare 2|T| to
        // λ|T|/3 — with λ = 15, 600 < 500 is false → still defer; after
        // four scans 1200 ≥ 500 → materialize.
        let g = example(300.0); // one extra scan accumulated
        assert_eq!(assess(&g, "T1", 15.0).decision, Decision::Defer);
        let g = example(1200.0);
        assert_eq!(assess(&g, "T1", 15.0).decision, Decision::Materialize);
    }

    #[test]
    fn eager_partition_follows_a_materialized_sibling() {
        let mut g = example(0.0);
        g.collection_mut("T1").status = CStatus::Materialized;
        let v = assess(&g, "T2", 15.0);
        assert_eq!(v.decision, Decision::Materialize);
        assert_eq!(v.rule, Rule::EagerPartition);
    }

    #[test]
    fn process_to_append_vetoes_materialization() {
        let mut g = example(0.0);
        g.collection_mut("T0").append_only = true;
        g.collection_mut("T0").times_processed = 100; // would trigger (a)
        let v = assess(&g, "T0", 2.0); // would trigger (d) too
        assert_eq!(v.decision, Decision::Defer);
        assert_eq!(v.rule, Rule::ProcessToAppend);
    }

    #[test]
    fn multi_process_triggers_past_lambda() {
        let mut g = example(0.0);
        g.collection_mut("T0").times_processed = 16;
        let v = assess(&g, "T0", 15.0);
        assert_eq!(v.decision, Decision::Materialize);
        assert_eq!(v.rule, Rule::MultiProcess);
    }

    #[test]
    fn plan_verdict_mirrors_the_runtime_rules() {
        // More processings than λ: materialize via multi-process.
        let v = plan_verdict(100.0, 300.0, 16.0, 15.0);
        assert_eq!(v.decision, Decision::Materialize);
        assert_eq!(v.rule, Rule::MultiProcess);

        // Wide-open filter at high λ: writing ~the whole source buys
        // nothing — defer.
        let v = plan_verdict(290.0, 300.0, 3.0, 15.0);
        assert_eq!(v.decision, Decision::Defer);
        assert_eq!(v.rule, Rule::DefaultDefer);

        // Selective filter: tiny write, every later scan cheap —
        // materialize via read-over-write.
        let v = plan_verdict(15.0, 300.0, 3.0, 15.0);
        assert_eq!(v.decision, Decision::Materialize);
        assert_eq!(v.rule, Rule::ReadOverWrite);

        // Same selective filter on a symmetric medium: still
        // materialize (writes are cheap there too).
        let v = plan_verdict(15.0, 300.0, 3.0, 1.0);
        assert_eq!(v.decision, Decision::Materialize);
    }
}
