//! Physical operators over the §3.1 API.
//!
//! An [`Operator`] receives its context at construction and records its
//! control-flow graph in `evaluate()` (called once, Listing 2). The
//! executable operators that move real records live in the
//! `write-limited` crate (e.g., the adaptive segmented Grace join);
//! here we keep the trait and a minimal recording operator used to test
//! the blueprint machinery end to end.

use crate::context::OpCtx;
use crate::graph::CStatus;

/// A physical operator: records its blueprint, then executes against it.
pub trait Operator {
    /// Records the operator's control-flow graph into its context
    /// (Listing 2's `evaluate()`; called at construction time).
    fn evaluate(&mut self, ctx: &mut OpCtx);

    /// Human-readable operator name.
    fn name(&self) -> &str;
}

/// The Fig. 4 blueprint recorder: partitions two inputs `k`-ways and
/// merges partition pairs into the output — segmented Grace join's
/// graph, without execution.
#[derive(Debug)]
pub struct SgjBlueprint {
    /// Left input name.
    pub left: String,
    /// Right input name.
    pub right: String,
    /// Output name.
    pub output: String,
    /// Partition count.
    pub k: usize,
    /// Left/right input sizes in buffers.
    pub sizes: (f64, f64),
    /// Names of the partition collections, filled by `evaluate()`.
    pub left_parts: Vec<String>,
    /// Right partition names, filled by `evaluate()`.
    pub right_parts: Vec<String>,
}

impl SgjBlueprint {
    /// Creates the blueprint for `left ⋈ right` with `k` partitions.
    pub fn new(left: &str, right: &str, output: &str, k: usize, sizes: (f64, f64)) -> Self {
        Self {
            left: left.into(),
            right: right.into(),
            output: output.into(),
            k,
            sizes,
            left_parts: Vec::new(),
            right_parts: Vec::new(),
        }
    }
}

impl Operator for SgjBlueprint {
    fn evaluate(&mut self, ctx: &mut OpCtx) {
        // Inputs and output are materialized by definition (Fig. 4's
        // filled ovals); partitions default to deferred.
        ctx.declare(&self.left, CStatus::Materialized, self.sizes.0);
        ctx.declare(&self.right, CStatus::Materialized, self.sizes.1);
        ctx.declare(&self.output, CStatus::Materialized, 0.0);

        for side in 0..2 {
            let (input, size, parts) = if side == 0 {
                (&self.left, self.sizes.0, &mut self.left_parts)
            } else {
                (&self.right, self.sizes.1, &mut self.right_parts)
            };
            for _ in 0..self.k {
                let name = ctx.create_name("part");
                ctx.declare(&name, CStatus::Deferred, size / self.k as f64);
                parts.push(name);
            }
            let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
            ctx.partition(input, self.k, &refs);
        }

        // Partition pairs merge (partial joins) straight into the output;
        // their results are appended, so rule (c) keeps them deferred.
        for i in 0..self.k {
            let partial = ctx.create_name("partial");
            ctx.declare(&partial, CStatus::Deferred, 0.0);
            ctx.mark_append_only(&partial);
            ctx.merge(&self.left_parts[i], &self.right_parts[i], &partial);
        }
    }

    fn name(&self) -> &str {
        "SGJ"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Decision, Rule};

    fn blueprint(lambda: f64) -> (OpCtx, SgjBlueprint) {
        let mut ctx = OpCtx::new(lambda);
        let mut op = SgjBlueprint::new("T", "V", "S", 3, (300.0, 3000.0));
        op.evaluate(&mut ctx);
        (ctx, op)
    }

    #[test]
    fn records_fig4_shape() {
        let (ctx, op) = blueprint(15.0);
        assert_eq!(op.left_parts.len(), 3);
        assert_eq!(op.right_parts.len(), 3);
        for p in op.left_parts.iter().chain(op.right_parts.iter()) {
            assert_eq!(ctx.status(p), CStatus::Deferred);
            assert_eq!(ctx.reconstruction_plan(p).len(), 1);
        }
    }

    #[test]
    fn partial_results_stay_deferred_by_rule_c() {
        let (mut ctx, _) = blueprint(1.5);
        // Even at λ=1.5 (cheap writes), appended partials stay deferred.
        let partial_names: Vec<String> = (0..3).map(|i| format!("partial#{}", 6 + i)).collect();
        for p in &partial_names {
            if ctx.graph().is_declared(p) {
                let v = ctx.assess(p).expect("deferred");
                assert_eq!(v.decision, Decision::Defer);
                assert_eq!(v.rule, Rule::ProcessToAppend);
            }
        }
    }

    #[test]
    fn high_lambda_defers_partitions_low_lambda_materializes() {
        let (mut ctx, op) = blueprint(15.0);
        let v = ctx.assess(&op.left_parts[0]).expect("deferred");
        assert_eq!(v.decision, Decision::Defer);

        let (mut ctx, op) = blueprint(2.0);
        let v = ctx.assess(&op.left_parts[0]).expect("deferred");
        assert_eq!(v.decision, Decision::Materialize);
        // And eager-partition cascades to the rest.
        let v = ctx.assess(&op.left_parts[1]).expect("deferred");
        assert_eq!(v.rule, Rule::EagerPartition);
    }
}
