//! Integration: every sort algorithm × every persistence layer × every
//! input order produces the same, correct, totally ordered output.

use pmem_sim::{BufferPool, LayerKind, PCollection, PmDevice};
use wisconsin::{sort_input, KeyOrder, Record, WisconsinRecord};
use write_limited::sort::{SortAlgorithm, SortContext};

fn keys_of(col: &PCollection<WisconsinRecord>) -> Vec<u64> {
    col.to_vec_uncounted().iter().map(|r| r.key()).collect()
}

fn algorithms() -> Vec<SortAlgorithm> {
    vec![
        SortAlgorithm::ExMS,
        SortAlgorithm::SegS { x: 0.3 },
        SortAlgorithm::SegS { x: 0.7 },
        SortAlgorithm::HybS { x: 0.3 },
        SortAlgorithm::HybS { x: 0.7 },
        SortAlgorithm::LaS,
        SortAlgorithm::SelS,
    ]
}

#[test]
fn all_algorithms_all_layers_sort_random_input() {
    for layer in LayerKind::ALL {
        for algo in algorithms() {
            let dev = PmDevice::paper_default();
            let input = PCollection::from_records_uncounted(
                &dev,
                layer,
                "T",
                sort_input(3000, KeyOrder::Random, 77),
            );
            let pool = BufferPool::new(150 * 80);
            let ctx = SortContext::new(&dev, layer, &pool);
            let out = algo.run(&input, &ctx, "sorted").expect("valid params");
            assert_eq!(
                keys_of(&out),
                (0..3000).collect::<Vec<u64>>(),
                "{} on {}",
                algo.label(),
                layer.label()
            );
        }
    }
}

#[test]
fn all_algorithms_handle_adversarial_orders() {
    let orders = [
        KeyOrder::Sorted,
        KeyOrder::Reverse,
        KeyOrder::NearlySorted { disorder: 0.05 },
        KeyOrder::FewDistinct { distinct: 3 },
    ];
    for order in orders {
        for algo in algorithms() {
            let dev = PmDevice::paper_default();
            let records = sort_input(2000, order, 5);
            let mut expect: Vec<u64> = records.iter().map(|r| r.key()).collect();
            expect.sort_unstable();
            let input =
                PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", records);
            let pool = BufferPool::new(100 * 80);
            let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
            let out = algo.run(&input, &ctx, "sorted").expect("valid params");
            assert_eq!(keys_of(&out), expect, "{} on {order:?}", algo.label());
        }
    }
}

#[test]
fn payloads_travel_with_their_keys() {
    // Sorting must move whole records, not just keys.
    let dev = PmDevice::paper_default();
    let records: Vec<WisconsinRecord> = sort_input(1500, KeyOrder::Random, 3);
    let input = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", records);
    let pool = BufferPool::new(100 * 80);
    let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
    let out = SortAlgorithm::SegS { x: 0.5 }
        .run(&input, &ctx, "sorted")
        .expect("valid");
    for r in out.to_vec_uncounted() {
        assert_eq!(
            r,
            WisconsinRecord::from_key(r.key()),
            "record corrupted in flight"
        );
    }
}

#[test]
fn tiny_memory_budgets_still_sort() {
    // One-record DRAM: every algorithm must degrade, not break.
    for algo in [
        SortAlgorithm::ExMS,
        SortAlgorithm::SegS { x: 0.5 },
        SortAlgorithm::HybS { x: 0.5 },
    ] {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            sort_input(200, KeyOrder::Random, 9),
        );
        let pool = BufferPool::new(80); // exactly one record
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = algo.run(&input, &ctx, "sorted").expect("valid");
        assert_eq!(
            keys_of(&out),
            (0..200).collect::<Vec<u64>>(),
            "{}",
            algo.label()
        );
    }
}

#[test]
fn write_profile_ordering_matches_the_paper() {
    // At a mid-size memory budget with λ = 15:
    //   LaS ≤ SegS(0.2) < SegS(0.8) ≤ ExMS in writes,
    //   and the reverse holds for reads (trading writes for reads).
    let run = |algo: SortAlgorithm| {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            sort_input(20_000, KeyOrder::Random, 21),
        );
        let pool = BufferPool::fraction_of(input.bytes(), 0.05);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        algo.run(&input, &ctx, "sorted").expect("valid");
        dev.snapshot().since(&before)
    };
    let exms = run(SortAlgorithm::ExMS);
    let seg_lo = run(SortAlgorithm::SegS { x: 0.2 });
    let seg_hi = run(SortAlgorithm::SegS { x: 0.8 });
    let las = run(SortAlgorithm::LaS);

    assert!(las.cl_writes <= seg_lo.cl_writes + seg_lo.cl_writes / 10);
    assert!(seg_lo.cl_writes < seg_hi.cl_writes);
    assert!(seg_hi.cl_writes <= exms.cl_writes);
    assert!(las.cl_reads > exms.cl_reads);
    assert!(seg_lo.cl_reads > seg_hi.cl_reads);
}
