//! Integration tests for the write-aware planner: golden algorithm
//! choices across the write/read latency sweep, and plan-lowering
//! equivalence against the naive DRAM executor.

use planner::{
    execute, execute_naive, Catalog, LogicalPlan, Materialization, PhysicalPlan, Planner,
    Predicate, TableStats,
};
use pmem_sim::{BufferPool, DeviceConfig, LatencyProfile, LayerKind, PCollection, PmDevice};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use wisconsin::{join_input, sort_input, KeyOrder, WisconsinRecord};
use write_limited::sort::SortAlgorithm;

fn sort_algo(planned: &planner::PlannedQuery) -> SortAlgorithm {
    match &planned.plan {
        PhysicalPlan::Sort { algo, .. } => *algo,
        other => panic!("expected sort at root, got {}", other.label()),
    }
}

/// Write intensity implied by a sort choice: the fraction of the input
/// that flows through write-incurring run generation.
fn intensity(a: SortAlgorithm) -> f64 {
    match a {
        SortAlgorithm::ExMS => 1.0,
        SortAlgorithm::SegS { x } | SortAlgorithm::HybS { x } => x,
        SortAlgorithm::LaS | SortAlgorithm::SelS => 0.0,
    }
}

/// Golden sweep: as the write/read ratio grows, the enumerator's chosen
/// sort intensity must fall monotonically (never rise), ending in a
/// write-limited choice — SegS at low intensity or LaS — at the paper's
/// λ = 15, and starting at (near-)full mergesort intensity at λ = 1.
#[test]
fn sort_choice_sweeps_with_lambda() {
    let mut cat = Catalog::new();
    cat.add_stats("T", TableStats::wisconsin(20_000));
    let logical = LogicalPlan::scan("T").sort();

    let mut last_intensity = f64::INFINITY;
    let mut chosen = Vec::new();
    for lambda in [1.0, 2.0, 4.0, 8.0, 15.0, 30.0] {
        let planned = Planner::new(lambda, 1250.0, LayerKind::BlockedMemory)
            .plan(&logical, &cat)
            .expect("plans");
        let algo = sort_algo(&planned);
        let i = intensity(algo);
        assert!(
            i <= last_intensity + 1e-9,
            "intensity must not rise with λ: {chosen:?} then {algo:?}"
        );
        last_intensity = i;
        chosen.push((lambda, algo));
    }
    let (_, at_one) = chosen[0];
    let (_, at_fifteen) = chosen[4];
    assert!(intensity(at_one) > 0.9, "λ=1 chose {at_one:?}");
    assert!(intensity(at_fifteen) < 0.7, "λ=15 chose {at_fifteen:?}");
}

/// Golden join sweep: at symmetric cost the partition-everything Grace
/// family is acceptable, but as λ grows the enumerator must shift to
/// plans that write less — and the predicted writes must be
/// non-increasing in λ.
#[test]
fn join_choice_writes_shrink_with_lambda() {
    let mut cat = Catalog::new();
    cat.add_stats("T", TableStats::wisconsin(10_000));
    cat.add_stats(
        "V",
        TableStats {
            rows: 50_000,
            record_bytes: 80,
            key_domain: 10_000,
        },
    );
    let logical = LogicalPlan::scan("T").join(LogicalPlan::scan("V"));

    let mut last_writes = f64::INFINITY;
    for lambda in [1.0, 4.0, 15.0, 40.0] {
        let planned = Planner::new(lambda, 1250.0, LayerKind::BlockedMemory)
            .plan(&logical, &cat)
            .expect("plans");
        assert!(
            planned.predicted.writes <= last_writes + 1e-9,
            "predicted writes rose with λ at λ={lambda}: {} > {last_writes}",
            planned.predicted.writes
        );
        last_writes = planned.predicted.writes;
    }
}

/// The knob the planner reports for SegS tracks the Eq. 4 closed form.
#[test]
fn enumerator_reports_the_eq4_optimum_when_it_wins() {
    let mut cat = Catalog::new();
    cat.add_stats("T", TableStats::wisconsin(20_000));
    let planned = Planner::new(8.0, 2500.0, LayerKind::BlockedMemory)
        .plan(&LogicalPlan::scan("T").sort(), &cat)
        .expect("plans");
    if let SortAlgorithm::SegS { x } = sort_algo(&planned) {
        let expect = write_limited::cost::sort_costs::optimal_segment_x(25_000.0, 2500.0, 8.0)
            .expect("applicable at λ=8");
        assert!(
            (x - expect).abs() < 1e-9 || [0.2, 0.5, 0.8].iter().any(|s| (x - s).abs() < 1e-9),
            "SegS knob {x} is neither the Eq. 4 optimum {expect} nor a sweep point"
        );
    }
}

/// End-to-end acceptance shape: the chosen algorithm changes when only
/// the device's write latency changes.
#[test]
fn chosen_plan_changes_with_write_latency() {
    let mut cat = Catalog::new();
    cat.add_stats("T", TableStats::wisconsin(20_000));
    let logical = LogicalPlan::scan("T").sort();
    let m = 1250.0;
    let symmetric = Planner::with_config(
        LatencyProfile::with_lambda(10.0, 1.0).lambda(),
        m,
        LayerKind::BlockedMemory,
        &DeviceConfig::paper_default().with_latency(LatencyProfile::with_lambda(10.0, 1.0)),
    )
    .plan(&logical, &cat)
    .expect("plans");
    let pcm = Planner::with_config(
        LatencyProfile::PCM.lambda(),
        m,
        LayerKind::BlockedMemory,
        &DeviceConfig::paper_default(),
    )
    .plan(&logical, &cat)
    .expect("plans");
    assert_ne!(
        sort_algo(&symmetric),
        sort_algo(&pcm),
        "write latency must steer the plan"
    );
}

/// Deferred-vs-materialized: a wide-open filter on the build side stays
/// a deferred view at high λ (writing it buys nothing), while at low λ
/// the planner materializes it.
#[test]
fn filter_deferral_tracks_lambda() {
    let mut cat = Catalog::new();
    cat.add_stats("T", TableStats::wisconsin(4_000));
    cat.add_stats(
        "V",
        TableStats {
            rows: 16_000,
            record_bytes: 80,
            key_domain: 4_000,
        },
    );
    // 95% selectivity: barely smaller than the source.
    let logical = LogicalPlan::scan("T")
        .filter(Predicate::KeyBelow(3_800))
        .join(LogicalPlan::scan("V"));

    let materialization_at = |lambda: f64| {
        let planned = Planner::new(lambda, 500.0, LayerKind::BlockedMemory)
            .plan(&logical, &cat)
            .expect("plans");
        match &planned.plan {
            PhysicalPlan::Join { left, .. } => match &**left {
                PhysicalPlan::Filter {
                    materialization, ..
                } => *materialization,
                other => panic!("expected filter under join, got {}", other.label()),
            },
            other => panic!("expected join root, got {}", other.label()),
        }
    };
    assert_eq!(materialization_at(1.0), Materialization::Materialized);
    assert_eq!(materialization_at(100.0), Materialization::Deferred);
}

/// The deferred-view lowering path end-to-end: force a setting where
/// the planner defers the build filter, execute through the §3.1
/// runtime (`DeferredFilter` + iterate-only join), and check the rows
/// against the naive executor.
#[test]
fn deferred_filter_plans_execute_correctly() {
    let lambda = 100.0;
    let dev = PmDevice::new(
        DeviceConfig::paper_default().with_latency(LatencyProfile::with_lambda(10.0, lambda)),
    );
    let w = join_input(4_000, 4, 21);
    let left = Arc::new(PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "T",
        w.left,
    ));
    let right = Arc::new(PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "V",
        w.right,
    ));
    let mut cat = Catalog::new();
    cat.add_table("T", left, 4_000);
    cat.add_table("V", right, 4_000);

    // 95% selectivity at a high write cost: writing the view is waste.
    let logical = LogicalPlan::scan("T")
        .filter(Predicate::KeyBelow(3_800))
        .join(LogicalPlan::scan("V"));
    let pool = BufferPool::new(500 * 64);
    let planner = Planner::for_device(&dev, &pool, LayerKind::BlockedMemory);
    let planned = planner.plan(&logical, &cat).expect("plans");

    let PhysicalPlan::Join { left: build, .. } = &planned.plan else {
        panic!("expected join root");
    };
    let PhysicalPlan::Filter {
        materialization, ..
    } = &**build
    else {
        panic!("expected filter under join");
    };
    assert_eq!(
        *materialization,
        Materialization::Deferred,
        "setting must exercise the deferred path"
    );
    // The evidence table must stay on one cost basis: the winner is
    // literally the cheapest row, even when the deferred view wins.
    let join_choice = planned
        .choices
        .iter()
        .find(|c| c.node.starts_with("join"))
        .expect("join enumerated");
    assert_eq!(join_choice.chosen, join_choice.candidates[0].label);

    let run = execute(&planned, &cat, &dev, LayerKind::BlockedMemory, &pool).expect("runs");
    let reference = execute_naive(&logical, &cat).expect("naive evaluates");
    assert_eq!(run.output.len(), 3_800 * 4);
    assert_eq!(run.output.canonical(), reference.canonical());
}

/// Property test: lowering any enumerated plan executes and returns the
/// same rows as the naive DRAM executor, across random shapes, sizes,
/// predicates, λ, and layers.
#[test]
fn lowered_plans_agree_with_naive_execution() {
    let mut rng = StdRng::seed_from_u64(0x9A7);
    for case in 0..24 {
        let t_rows = rng.gen_range(200u64..1200);
        let fanout = rng.gen_range(1u64..5);
        let lambda = [1.0, 4.0, 15.0][case % 3];
        let layer = LayerKind::ALL[case % LayerKind::ALL.len()];
        let m_records = rng.gen_range(40usize..200);

        let dev = PmDevice::new(
            DeviceConfig::paper_default().with_latency(LatencyProfile::with_lambda(10.0, lambda)),
        );
        let w = join_input(t_rows, fanout, case as u64);
        let left = Arc::new(PCollection::from_records_uncounted(
            &dev, layer, "T", w.left,
        ));
        let right = Arc::new(PCollection::from_records_uncounted(
            &dev, layer, "V", w.right,
        ));
        let sorted_t = Arc::new(PCollection::from_records_uncounted(
            &dev,
            layer,
            "S",
            sort_input(t_rows, KeyOrder::Random, case as u64 + 7),
        ));
        let mut cat = Catalog::new();
        cat.add_table("T", left, t_rows);
        cat.add_table("V", right, t_rows);
        cat.add_table("S", sorted_t, t_rows);

        let bound = rng.gen_range(1u64..t_rows);
        let shapes: [LogicalPlan; 5] = [
            LogicalPlan::scan("S").sort(),
            LogicalPlan::scan("S")
                .filter(Predicate::KeyBelow(bound))
                .sort(),
            LogicalPlan::scan("T")
                .join(LogicalPlan::scan("V"))
                .aggregate(),
            LogicalPlan::scan("T")
                .filter(Predicate::KeyBelow(bound))
                .join(LogicalPlan::scan("V"))
                .aggregate()
                .sort(),
            LogicalPlan::scan("T")
                .filter(Predicate::KeyModEq {
                    modulus: 2,
                    residue: 0,
                })
                .join(LogicalPlan::scan("V")),
        ];
        let logical = &shapes[case % shapes.len()];

        let pool = BufferPool::new(m_records * 80);
        let planner = Planner::for_device(&dev, &pool, layer);
        let planned = match planner.plan(logical, &cat) {
            Ok(p) => p,
            Err(e) => panic!("case {case}: planning failed: {e}"),
        };
        let run = match execute(&planned, &cat, &dev, layer, &pool) {
            Ok(r) => r,
            Err(e) => panic!(
                "case {case}: execution failed: {e} (plan: {})",
                planned.plan.describe()
            ),
        };
        let reference = execute_naive(logical, &cat).expect("naive evaluates");
        assert_eq!(
            run.output.canonical(),
            reference.canonical(),
            "case {case}: λ={lambda} layer={} plan:\n{}",
            layer.label(),
            planned.plan.describe()
        );
        // Sort-rooted plans must actually produce ordered keys.
        if matches!(logical, LogicalPlan::Sort { .. }) {
            let keys = run.output.keys();
            assert!(
                keys.windows(2).all(|w| w[0] <= w[1]),
                "case {case}: unsorted"
            );
        }
        assert!(run.stats.cl_reads > 0, "case {case}: nothing measured");
    }
}

/// The planner's predicted traffic is in the right regime: within a
/// factor of three of measured on both axes for the canonical
/// filter-join-aggregate query (the models drop floors/ceilings, so
/// exactness is not expected — but order-of-magnitude concordance is
/// the Fig. 12 property the planner depends on).
#[test]
fn predictions_track_measurements_for_the_canonical_query() {
    let dev = PmDevice::paper_default();
    let w = join_input(4_000, 5, 11);
    let left = Arc::new(PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "T",
        w.left,
    ));
    let right = Arc::new(PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "V",
        w.right,
    ));
    let mut cat = Catalog::new();
    cat.add_table("T", left, 4_000);
    cat.add_table("V", right, 4_000);

    let logical = LogicalPlan::scan("T")
        .filter(Predicate::KeyBelow(2_000))
        .join(LogicalPlan::scan("V"))
        .aggregate();
    let pool = BufferPool::new(400 * 80);
    let planner = Planner::for_device(&dev, &pool, LayerKind::BlockedMemory);
    let planned = planner.plan(&logical, &cat).expect("plans");
    let run = execute(&planned, &cat, &dev, LayerKind::BlockedMemory, &pool).expect("runs");

    let pr = planned.predicted.reads;
    let pw = planned.predicted.writes;
    let mr = run.stats.cl_reads as f64;
    let mw = run.stats.cl_writes as f64;
    assert!(mr > 0.0 && mw > 0.0);
    assert!(
        (0.33..3.0).contains(&(pr / mr)),
        "read prediction off: {pr:.0} vs {mr:.0}"
    );
    assert!(
        (0.33..3.0).contains(&(pw / mw)),
        "write prediction off: {pw:.0} vs {mw:.0}"
    );
}

/// Wisconsin-record predicates route through the planner identically to
/// raw key comparisons (regression guard for the Predicate plumbing).
#[test]
fn predicate_lowering_matches_manual_filtering() {
    let dev = PmDevice::paper_default();
    let input = Arc::new(PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "T",
        sort_input(500, KeyOrder::Random, 3),
    ));
    let mut cat = Catalog::new();
    cat.add_table("T", Arc::clone(&input), 500);
    let pool = BufferPool::new(60 * 80);
    let planner = Planner::for_device(&dev, &pool, LayerKind::BlockedMemory);

    for predicate in [
        Predicate::KeyBelow(123),
        Predicate::KeyAtLeast(456),
        Predicate::KeyModEq {
            modulus: 7,
            residue: 3,
        },
    ] {
        let logical = LogicalPlan::scan("T").filter(predicate).sort();
        let planned = planner.plan(&logical, &cat).expect("plans");
        let run = execute(&planned, &cat, &dev, LayerKind::BlockedMemory, &pool).expect("runs");
        let expect: Vec<WisconsinRecord> = {
            let mut v: Vec<WisconsinRecord> = input
                .to_vec_uncounted()
                .into_iter()
                .filter(|r| predicate.matches(r))
                .collect();
            v.sort_by_key(wisconsin::Record::key);
            v
        };
        let planner::OutputRows::Wis(got) = run.output else {
            panic!("expected base rows")
        };
        assert_eq!(got, expect, "{}", predicate.describe());
    }
}
