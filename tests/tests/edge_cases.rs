//! Edge cases and failure injection across the stack: invalid
//! parameters surface as errors (never wrong answers), panicking
//! preconditions fire, and extreme inputs stay correct.

use pmem_sim::{BufferPool, LayerKind, PCollection, PmDevice};
use wisconsin::{Record as _, WisconsinRecord};
use write_limited::join::{JoinAlgorithm, JoinContext};
use write_limited::sort::{SortAlgorithm, SortContext};

#[test]
fn invalid_knobs_error_for_every_parameterized_algorithm() {
    let dev = PmDevice::paper_default();
    let input = PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "T",
        (0..50).map(WisconsinRecord::from_key),
    );
    let pool = BufferPool::new(8000);
    let sctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
    let jctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);

    for bad in [-0.5, 1.5, f64::NAN] {
        assert!(
            SortAlgorithm::SegS { x: bad }
                .run(&input, &sctx, "s")
                .is_err(),
            "SegS accepted x = {bad}"
        );
        assert!(
            SortAlgorithm::HybS { x: bad }
                .run(&input, &sctx, "s")
                .is_err(),
            "HybS accepted x = {bad}"
        );
        assert!(
            JoinAlgorithm::HybJ { x: bad, y: 0.5 }
                .run(&input, &input, &jctx, "j")
                .is_err(),
            "HybJ accepted x = {bad}"
        );
        assert!(
            JoinAlgorithm::SegJ { frac: bad }
                .run(&input, &input, &jctx, "j")
                .is_err(),
            "SegJ accepted frac = {bad}"
        );
        assert!(
            JoinAlgorithm::SMJ { x: bad }
                .run(&input, &input, &jctx, "j")
                .is_err(),
            "SMJ accepted x = {bad}"
        );
    }
}

/// Empty inputs must flow through every algorithm as empty results —
/// no divide-by-zero, no empty-partition panics, no errors. Sweeps all
/// join algorithms over (empty, empty), (empty, full), (full, empty),
/// every sort algorithm over an empty collection, and the aggregator.
#[test]
fn empty_inputs_yield_empty_results_for_every_algorithm() {
    let dev = PmDevice::paper_default();
    let empty = PCollection::<WisconsinRecord>::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "E",
        std::iter::empty(),
    );
    let full = PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "F",
        (0..200).map(WisconsinRecord::from_key),
    );
    let pool = BufferPool::new(100 * 80);
    let jctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
    let sctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);

    let joins = [
        JoinAlgorithm::NLJ,
        JoinAlgorithm::GJ,
        JoinAlgorithm::HJ,
        JoinAlgorithm::HybJ { x: 0.5, y: 0.5 },
        JoinAlgorithm::SegJ { frac: 0.5 },
        JoinAlgorithm::LaJ,
        JoinAlgorithm::SMJ { x: 0.5 },
    ];
    for algo in joins {
        for (name, l, r) in [
            ("empty ⋈ empty", &empty, &empty),
            ("empty ⋈ full", &empty, &full),
            ("full ⋈ empty", &full, &empty),
        ] {
            let out = algo
                .run(l, r, &jctx, "j")
                .unwrap_or_else(|e| panic!("{} over {name}: {e:?}", algo.label()));
            assert!(out.is_empty(), "{} over {name} produced rows", algo.label());
        }
    }

    let sorts = [
        SortAlgorithm::ExMS,
        SortAlgorithm::SegS { x: 0.5 },
        SortAlgorithm::HybS { x: 0.5 },
        SortAlgorithm::LaS,
        SortAlgorithm::SelS,
    ];
    for algo in sorts {
        let out = algo
            .run(&empty, &sctx, "s")
            .unwrap_or_else(|e| panic!("{} over empty: {e:?}", algo.label()));
        assert!(out.is_empty(), "{} over empty produced rows", algo.label());
    }

    for x in [0.0, 0.5, 1.0] {
        let out = write_limited::agg::sort_based_aggregate(
            &empty,
            x,
            |r: &WisconsinRecord| r.payload(),
            &sctx,
            "a",
        )
        .unwrap_or_else(|e| panic!("aggregate (x={x}) over empty: {e:?}"));
        assert!(out.is_empty(), "aggregate over empty produced groups");
    }
}

#[test]
fn extreme_keys_sort_correctly() {
    let keys = [u64::MAX, 0, u64::MAX - 1, 1, u64::MAX / 2, u64::MAX, 0];
    for algo in [
        SortAlgorithm::ExMS,
        SortAlgorithm::SegS { x: 0.5 },
        SortAlgorithm::HybS { x: 0.5 },
        SortAlgorithm::LaS,
        SortAlgorithm::SelS,
    ] {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            keys.iter().map(|&k| WisconsinRecord::from_key(k)),
        );
        let pool = BufferPool::new(3 * 80); // force multi-pass machinery
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = algo.run(&input, &ctx, "sorted").expect("valid");
        let got: Vec<u64> = out.to_vec_uncounted().iter().map(|r| r.key()).collect();
        let mut expect = keys.to_vec();
        expect.sort_unstable();
        assert_eq!(got, expect, "{}", algo.label());
    }
}

#[test]
fn all_equal_keys_are_stable_under_every_sort() {
    // A degenerate input with one key value exercises every tiebreak.
    for algo in [
        SortAlgorithm::ExMS,
        SortAlgorithm::SegS { x: 0.5 },
        SortAlgorithm::HybS { x: 0.5 },
        SortAlgorithm::LaS,
        SortAlgorithm::SelS,
    ] {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            (0..500u64).map(|i| WisconsinRecord::from_key(7).with_payload(i)),
        );
        let pool = BufferPool::new(40 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = algo.run(&input, &ctx, "sorted").expect("valid");
        assert_eq!(out.len(), 500, "{}", algo.label());
        // Every payload must survive exactly once.
        let mut payloads: Vec<u64> = out.to_vec_uncounted().iter().map(|r| r.payload()).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, (0..500).collect::<Vec<_>>(), "{}", algo.label());
    }
}

#[test]
fn buffer_pool_reservations_cannot_overdraw() {
    let pool = BufferPool::new(1000);
    let first = pool.reserve(700).expect("fits");
    assert!(pool.reserve(400).is_err());
    drop(first);
    assert!(pool.reserve(400).is_ok());
}

#[test]
#[should_panic(expected = "read past end")]
fn reading_past_collection_end_panics() {
    let dev = PmDevice::paper_default();
    let mut s = pmem_sim::Storage::new(LayerKind::BlockedMemory, dev.config());
    s.append(&[0u8; 10], &dev);
    let mut buf = [0u8; 20];
    s.read_at(0, &mut buf, &mut pmem_sim::ReadCursor::new(), &dev);
}

#[test]
#[should_panic(expected = "already paused")]
fn nested_metric_pauses_panic() {
    let dev = PmDevice::paper_default();
    let _a = dev.metrics().pause();
    let _b = dev.metrics().pause();
}

#[test]
#[should_panic(expected = "bad range")]
fn inverted_range_reader_panics() {
    let dev = PmDevice::paper_default();
    let mut c = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "c");
    c.append(&1);
    let _ = c.range_reader(1, 0);
}

#[test]
fn metrics_are_monotone_through_any_workload() {
    let dev = PmDevice::paper_default();
    let mut prev = dev.snapshot();
    let input = PCollection::from_records_uncounted(
        &dev,
        LayerKind::RamDisk,
        "T",
        (0..2000).map(WisconsinRecord::from_key),
    );
    let pool = BufferPool::new(100 * 80);
    let ctx = SortContext::new(&dev, LayerKind::RamDisk, &pool);
    for algo in [SortAlgorithm::ExMS, SortAlgorithm::LaS] {
        let _ = algo.run(&input, &ctx, "s").expect("valid");
        let now = dev.snapshot();
        assert!(now.cl_reads >= prev.cl_reads);
        assert!(now.cl_writes >= prev.cl_writes);
        assert!(now.software_ns >= prev.software_ns);
        prev = now;
    }
}

#[test]
fn determinism_same_seed_same_counters() {
    let run = || {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            wisconsin::sort_input(3000, wisconsin::KeyOrder::Random, 123),
        );
        let pool = BufferPool::new(100 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let _ = SortAlgorithm::SegS { x: 0.4 }
            .run(&input, &ctx, "s")
            .expect("valid");
        dev.snapshot()
    };
    assert_eq!(run(), run(), "the simulator must be fully deterministic");
}

#[test]
fn sequential_point_reads_with_cursor_cost_like_a_scan() {
    let dev = PmDevice::paper_default();
    let mut c = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "c");
    {
        let _p = dev.metrics().pause();
        for i in 0..1000u64 {
            c.append(&i);
        }
    }
    let before = dev.snapshot();
    let mut cursor = pmem_sim::ReadCursor::new();
    for i in 0..1000 {
        assert_eq!(c.get_with_cursor(i, &mut cursor), i as u64);
    }
    let with_cursor = dev.snapshot().since(&before).cl_reads;
    assert_eq!(with_cursor, c.buffers(), "cursor reads must match a scan");

    // Fresh-cursor point reads overcount instead (isolated accesses).
    let before = dev.snapshot();
    for i in 0..1000 {
        let _ = c.get(i);
    }
    let without = dev.snapshot().since(&before).cl_reads;
    assert!(without > with_cursor);
}

#[test]
fn exec_operators_propagate_algorithm_errors() {
    use write_limited::exec::{PhysOperator, ScanOp, SortOp};
    let dev = PmDevice::paper_default();
    let input = PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "T",
        (0..10).map(WisconsinRecord::from_key),
    );
    let pool = BufferPool::new(8000);
    let mut op = SortOp::new(
        ScanOp::new(&input),
        SortAlgorithm::SegS { x: 2.0 }, // invalid knob
        &dev,
        LayerKind::BlockedMemory,
        &pool,
    );
    assert!(op.open().is_err());
}

#[test]
fn runtime_reconstruction_covers_merge_chains() {
    use wl_runtime::{ApiCall, CStatus, Graph};
    // T --split--> A, B (deferred); A, B --merge--> S (deferred):
    // reconstructing S replays split then merge, reading T once.
    let mut g = Graph::new();
    g.declare("T", CStatus::Materialized, 100.0);
    g.declare("A", CStatus::Deferred, 50.0);
    g.declare("B", CStatus::Deferred, 50.0);
    g.declare("S", CStatus::Deferred, 100.0);
    g.record_call(ApiCall::Split { at: 50 }, &["T"], &["A", "B"]);
    g.record_call(ApiCall::Merge, &["A", "B"], &["S"]);
    let plan = g.reconstruction_plan("S");
    assert_eq!(plan.len(), 3); // merge + split reached via both inputs
    assert_eq!(g.reconstruction_read_cost("S"), 200.0); // A + B scans + T once... T deduped
}
