//! Edge cases and failure injection across the stack: invalid
//! parameters surface as errors (never wrong answers), panicking
//! preconditions fire, and extreme inputs stay correct.

use pmem_sim::{BufferPool, LayerKind, PCollection, PmDevice};
use wisconsin::{Record as _, WisconsinRecord};
use write_limited::join::{JoinAlgorithm, JoinContext};
use write_limited::sort::{SortAlgorithm, SortContext};

#[test]
fn invalid_knobs_error_for_every_parameterized_algorithm() {
    let dev = PmDevice::paper_default();
    let input = PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "T",
        (0..50).map(WisconsinRecord::from_key),
    );
    let pool = BufferPool::new(8000);
    let sctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
    let jctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);

    for bad in [-0.5, 1.5, f64::NAN] {
        assert!(
            SortAlgorithm::SegS { x: bad }
                .run(&input, &sctx, "s")
                .is_err(),
            "SegS accepted x = {bad}"
        );
        assert!(
            SortAlgorithm::HybS { x: bad }
                .run(&input, &sctx, "s")
                .is_err(),
            "HybS accepted x = {bad}"
        );
        assert!(
            JoinAlgorithm::HybJ { x: bad, y: 0.5 }
                .run(&input, &input, &jctx, "j")
                .is_err(),
            "HybJ accepted x = {bad}"
        );
        assert!(
            JoinAlgorithm::SegJ { frac: bad }
                .run(&input, &input, &jctx, "j")
                .is_err(),
            "SegJ accepted frac = {bad}"
        );
        assert!(
            JoinAlgorithm::SMJ { x: bad }
                .run(&input, &input, &jctx, "j")
                .is_err(),
            "SMJ accepted x = {bad}"
        );
    }
}

#[test]
fn extreme_keys_sort_correctly() {
    let keys = [u64::MAX, 0, u64::MAX - 1, 1, u64::MAX / 2, u64::MAX, 0];
    for algo in [
        SortAlgorithm::ExMS,
        SortAlgorithm::SegS { x: 0.5 },
        SortAlgorithm::HybS { x: 0.5 },
        SortAlgorithm::LaS,
        SortAlgorithm::SelS,
    ] {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            keys.iter().map(|&k| WisconsinRecord::from_key(k)),
        );
        let pool = BufferPool::new(3 * 80); // force multi-pass machinery
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = algo.run(&input, &ctx, "sorted").expect("valid");
        let got: Vec<u64> = out.to_vec_uncounted().iter().map(|r| r.key()).collect();
        let mut expect = keys.to_vec();
        expect.sort_unstable();
        assert_eq!(got, expect, "{}", algo.label());
    }
}

#[test]
fn all_equal_keys_are_stable_under_every_sort() {
    // A degenerate input with one key value exercises every tiebreak.
    for algo in [
        SortAlgorithm::ExMS,
        SortAlgorithm::SegS { x: 0.5 },
        SortAlgorithm::HybS { x: 0.5 },
        SortAlgorithm::LaS,
        SortAlgorithm::SelS,
    ] {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            (0..500u64).map(|i| WisconsinRecord::from_key(7).with_payload(i)),
        );
        let pool = BufferPool::new(40 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = algo.run(&input, &ctx, "sorted").expect("valid");
        assert_eq!(out.len(), 500, "{}", algo.label());
        // Every payload must survive exactly once.
        let mut payloads: Vec<u64> = out.to_vec_uncounted().iter().map(|r| r.payload()).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, (0..500).collect::<Vec<_>>(), "{}", algo.label());
    }
}

#[test]
fn buffer_pool_reservations_cannot_overdraw() {
    let pool = BufferPool::new(1000);
    let first = pool.reserve(700).expect("fits");
    assert!(pool.reserve(400).is_err());
    drop(first);
    assert!(pool.reserve(400).is_ok());
}

#[test]
#[should_panic(expected = "read past end")]
fn reading_past_collection_end_panics() {
    let dev = PmDevice::paper_default();
    let mut s = pmem_sim::Storage::new(LayerKind::BlockedMemory, dev.config());
    s.append(&[0u8; 10], &dev);
    let mut buf = [0u8; 20];
    s.read_at(0, &mut buf, &mut pmem_sim::ReadCursor::new(), &dev);
}

#[test]
#[should_panic(expected = "already paused")]
fn nested_metric_pauses_panic() {
    let dev = PmDevice::paper_default();
    let _a = dev.metrics().pause();
    let _b = dev.metrics().pause();
}

#[test]
#[should_panic(expected = "bad range")]
fn inverted_range_reader_panics() {
    let dev = PmDevice::paper_default();
    let mut c = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "c");
    c.append(&1);
    let _ = c.range_reader(1, 0);
}

#[test]
fn metrics_are_monotone_through_any_workload() {
    let dev = PmDevice::paper_default();
    let mut prev = dev.snapshot();
    let input = PCollection::from_records_uncounted(
        &dev,
        LayerKind::RamDisk,
        "T",
        (0..2000).map(WisconsinRecord::from_key),
    );
    let pool = BufferPool::new(100 * 80);
    let ctx = SortContext::new(&dev, LayerKind::RamDisk, &pool);
    for algo in [SortAlgorithm::ExMS, SortAlgorithm::LaS] {
        let _ = algo.run(&input, &ctx, "s").expect("valid");
        let now = dev.snapshot();
        assert!(now.cl_reads >= prev.cl_reads);
        assert!(now.cl_writes >= prev.cl_writes);
        assert!(now.software_ns >= prev.software_ns);
        prev = now;
    }
}

#[test]
fn determinism_same_seed_same_counters() {
    let run = || {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            wisconsin::sort_input(3000, wisconsin::KeyOrder::Random, 123),
        );
        let pool = BufferPool::new(100 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let _ = SortAlgorithm::SegS { x: 0.4 }
            .run(&input, &ctx, "s")
            .expect("valid");
        dev.snapshot()
    };
    assert_eq!(run(), run(), "the simulator must be fully deterministic");
}

#[test]
fn sequential_point_reads_with_cursor_cost_like_a_scan() {
    let dev = PmDevice::paper_default();
    let mut c = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "c");
    {
        let _p = dev.metrics().pause();
        for i in 0..1000u64 {
            c.append(&i);
        }
    }
    let before = dev.snapshot();
    let mut cursor = pmem_sim::ReadCursor::new();
    for i in 0..1000 {
        assert_eq!(c.get_with_cursor(i, &mut cursor), i as u64);
    }
    let with_cursor = dev.snapshot().since(&before).cl_reads;
    assert_eq!(with_cursor, c.buffers(), "cursor reads must match a scan");

    // Fresh-cursor point reads overcount instead (isolated accesses).
    let before = dev.snapshot();
    for i in 0..1000 {
        let _ = c.get(i);
    }
    let without = dev.snapshot().since(&before).cl_reads;
    assert!(without > with_cursor);
}

#[test]
fn exec_operators_propagate_algorithm_errors() {
    use write_limited::exec::{PhysOperator, ScanOp, SortOp};
    let dev = PmDevice::paper_default();
    let input = PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "T",
        (0..10).map(WisconsinRecord::from_key),
    );
    let pool = BufferPool::new(8000);
    let mut op = SortOp::new(
        ScanOp::new(&input),
        SortAlgorithm::SegS { x: 2.0 }, // invalid knob
        &dev,
        LayerKind::BlockedMemory,
        &pool,
    );
    assert!(op.open().is_err());
}

#[test]
fn runtime_reconstruction_covers_merge_chains() {
    use wl_runtime::{ApiCall, CStatus, Graph};
    // T --split--> A, B (deferred); A, B --merge--> S (deferred):
    // reconstructing S replays split then merge, reading T once.
    let mut g = Graph::new();
    g.declare("T", CStatus::Materialized, 100.0);
    g.declare("A", CStatus::Deferred, 50.0);
    g.declare("B", CStatus::Deferred, 50.0);
    g.declare("S", CStatus::Deferred, 100.0);
    g.record_call(ApiCall::Split { at: 50 }, &["T"], &["A", "B"]);
    g.record_call(ApiCall::Merge, &["A", "B"], &["S"]);
    let plan = g.reconstruction_plan("S");
    assert_eq!(plan.len(), 3); // merge + split reached via both inputs
    assert_eq!(g.reconstruction_read_cost("S"), 200.0); // A + B scans + T once... T deduped
}
