//! Integration: the cost models rank algorithms like the simulator
//! measures them (the Fig. 12 claim, at test scale).

use pmem_sim::{BufferPool, LatencyProfile, LayerKind, PCollection, PmDevice};
use wisconsin::{join_input, sort_input, KeyOrder};
use write_limited::cost::{estimate_join, estimate_sort};
use write_limited::join::{JoinAlgorithm, JoinContext};
use write_limited::sort::{SortAlgorithm, SortContext};
use write_limited::stats::kendall_tau;

#[test]
fn sort_cost_model_concordance_is_high() {
    let n = 20_000u64;
    let algos = [
        SortAlgorithm::ExMS,
        SortAlgorithm::SegS { x: 0.2 },
        SortAlgorithm::SegS { x: 0.5 },
        SortAlgorithm::SegS { x: 0.8 },
        SortAlgorithm::HybS { x: 0.5 },
        SortAlgorithm::SelS,
    ];
    let t = (n * 80).div_ceil(64) as f64;
    let lambda = LatencyProfile::PCM.lambda();

    for frac in [0.02, 0.05, 0.10] {
        let mut est = Vec::new();
        let mut meas = Vec::new();
        for algo in &algos {
            let dev = PmDevice::paper_default();
            let input = PCollection::from_records_uncounted(
                &dev,
                LayerKind::BlockedMemory,
                "T",
                sort_input(n, KeyOrder::Random, 1),
            );
            let pool = BufferPool::fraction_of(input.bytes(), frac);
            let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
            let before = dev.snapshot();
            algo.run(&input, &ctx, "s").expect("valid");
            let stats = dev.snapshot().since(&before);
            est.push(estimate_sort(algo, t, t * frac, lambda));
            meas.push(stats.time_secs(&LatencyProfile::PCM));
        }
        let tau = kendall_tau(&est, &meas).expect("defined");
        assert!(tau >= 0.5, "sort concordance at M={frac}: τ = {tau}");
    }
}

#[test]
fn join_cost_model_concordance_is_high() {
    let t_records = 4000u64;
    let fanout = 8u64;
    let algos = [
        JoinAlgorithm::NLJ,
        JoinAlgorithm::GJ,
        JoinAlgorithm::HJ,
        JoinAlgorithm::HybJ { x: 0.5, y: 0.5 },
        JoinAlgorithm::SegJ { frac: 0.2 },
        JoinAlgorithm::SegJ { frac: 0.8 },
    ];
    let t = (t_records * 80).div_ceil(64) as f64;
    let v = t * fanout as f64;
    let lambda = LatencyProfile::PCM.lambda();

    for frac in [0.05, 0.10] {
        let mut est = Vec::new();
        let mut meas = Vec::new();
        for algo in &algos {
            let dev = PmDevice::paper_default();
            let w = join_input(t_records, fanout, 1);
            let left =
                PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
            let right =
                PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
            let pool = BufferPool::fraction_of(left.bytes(), frac);
            let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
            let before = dev.snapshot();
            if algo.run(&left, &right, &ctx, "o").is_err() {
                continue;
            }
            let stats = dev.snapshot().since(&before);
            est.push(estimate_join(algo, t, v, t * frac, lambda));
            meas.push(stats.time_secs(&LatencyProfile::PCM));
        }
        let tau = kendall_tau(&est, &meas).expect("defined");
        assert!(tau >= 0.5, "join concordance at M={frac}: τ = {tau}");
    }
}

#[test]
fn eq4_optimal_x_is_not_beaten_badly_by_the_sweep() {
    // The closed-form x* should be within 25% of the best measured x on
    // a sweep (the form drops floors/ceilings, so exactness is not
    // expected).
    let n = 20_000u64;
    let frac = 0.10;
    let t = (n * 80).div_ceil(64) as f64;
    let lambda = LatencyProfile::PCM.lambda();
    let Some(x_star) = write_limited::cost::sort_costs::optimal_segment_x(t, t * frac, lambda)
    else {
        return; // inapplicable at this λ — nothing to check
    };

    let measure = |x: f64| {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            sort_input(n, KeyOrder::Random, 2),
        );
        let pool = BufferPool::fraction_of(input.bytes(), frac);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        write_limited::sort::segment_sort(&input, x, &ctx, "s").expect("valid");
        dev.snapshot()
            .since(&before)
            .time_secs(&LatencyProfile::PCM)
    };

    let at_star = measure(x_star);
    let best_swept = [0.1, 0.3, 0.5, 0.7, 0.9]
        .into_iter()
        .map(measure)
        .fold(f64::INFINITY, f64::min);
    assert!(
        at_star <= best_swept * 1.25,
        "x* = {x_star:.2} gives {at_star:.4}s vs best swept {best_swept:.4}s"
    );
}
