//! Integration tests for the `wl-db` facade: golden parse trees for
//! every supported clause, span-carrying error paths, and end-to-end
//! agreement between SQL sessions and the naive DRAM executor —
//! including multi-way join queries, self-join aliases, empty tables,
//! and LIMIT short-circuits.

use planner::{execute_naive, LogicalPlan, Predicate};
use wl_db::{bind, parse, Database, DbError, Response, Statement};

// ---------- golden parse trees, one per supported clause ----------

#[test]
fn golden_parse_trees_cover_every_clause() {
    let cases: &[(&str, &str)] = &[
        (
            "CREATE TABLE t AS WISCONSIN(10_000);",
            "create t as wisconsin(rows=10000, fanout=1, seed=42)\n",
        ),
        (
            "CREATE TABLE v AS WISCONSIN(1000, 4, 7);",
            "create v as wisconsin(rows=1000, fanout=4, seed=7)\n",
        ),
        ("DROP TABLE t;", "drop t\n"),
        ("SHOW TABLES;", "show tables\n"),
        ("SET threads = 8;", "set threads = 8\n"),
        (
            "SELECT * FROM t;",
            "select\n  project *\n  from t\n",
        ),
        (
            "SELECT key, payload FROM t WHERE key < 100;",
            "select\n  project key, payload\n  from t\n  where key < 100\n",
        ),
        (
            "SELECT * FROM t WHERE key >= 10 AND key % 3 = 1;",
            "select\n  project *\n  from t\n  where key >= 10\n  where key % 3 = 1\n",
        ),
        (
            "SELECT * FROM t INNER JOIN v ON t.key = v.key;",
            "select\n  project *\n  from t\n  join v on t.key = v.key\n",
        ),
        (
            "SELECT * FROM t GROUP BY key;",
            "select\n  project *\n  from t\n  group by key\n",
        ),
        (
            "SELECT * FROM t ORDER BY key LIMIT 5;",
            "select\n  project *\n  from t\n  order by key\n  limit 5\n",
        ),
        (
            "EXPLAIN SELECT * FROM t JOIN v ON t.key = v.key GROUP BY key ORDER BY key;",
            "explain select\n  project *\n  from t\n  join v on t.key = v.key\n  group by key\n  order by key\n",
        ),
        (
            "SELECT * FROM t JOIN v ON t.key = v.key JOIN w ON v.key = w.key;",
            "select\n  project *\n  from t\n  join v on t.key = v.key\n  join w on v.key = w.key\n",
        ),
        (
            "SELECT t.payload, u.payload FROM t JOIN t AS u ON t.key = u.key;",
            "select\n  project t.payload, u.payload\n  from t\n  join t as u on t.key = u.key\n",
        ),
        (
            "SELECT * FROM t AS x WHERE x.key < 9;",
            "select\n  project *\n  from t as x\n  where x.key < 9\n",
        ),
        ("CREATE TABLE e AS WISCONSIN(0);", "create e as wisconsin(rows=0, fanout=1, seed=42)\n"),
    ];
    for (sql, golden) in cases {
        let stmt = parse(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        assert_eq!(&stmt.describe(), golden, "golden tree for {sql}");
    }
}

// ---------- error paths with spans ----------

#[test]
fn error_paths_carry_spans_into_the_source() {
    let db = Database::builder().build();
    db.create_wisconsin("t", 100, 1, 1).expect("fresh");
    let mut session = db.session();

    // Unknown table: binder error, span on the table name.
    let sql = "SELECT * FROM nosuch";
    let DbError::Sql(e) = session.execute(sql).unwrap_err() else {
        panic!("expected SQL error")
    };
    assert_eq!(e.message, "unknown table \"nosuch\"");
    assert_eq!(&sql[e.span.start..e.span.end], "nosuch");
    assert!(e.render(sql).contains("^^^^^^"), "caret under the span");

    // Type mismatch: parser error, span on the string literal.
    let sql = "SELECT * FROM t WHERE key < 'ten'";
    let DbError::Sql(e) = session.execute(sql).unwrap_err() else {
        panic!("expected SQL error")
    };
    assert!(e.message.contains("type mismatch"), "{}", e.message);
    assert_eq!(&sql[e.span.start..e.span.end], "'ten'");

    // Trailing tokens: parser error, span from the first extra token.
    let sql = "SHOW TABLES extra stuff";
    let DbError::Sql(e) = session.execute(sql).unwrap_err() else {
        panic!("expected SQL error")
    };
    assert!(e.message.contains("trailing tokens"), "{}", e.message);
    assert_eq!(&sql[e.span.start..e.span.end], "extra stuff");
}

// ---------- end-to-end: SQL sessions vs the naive executor ----------

#[test]
fn sql_results_agree_with_the_naive_executor() {
    let db = Database::builder().dram_records(150).batch_rows(33).build();
    db.create_wisconsin("t", 700, 1, 11).expect("fresh");
    db.create_wisconsin("v", 700, 3, 11).expect("fresh");
    let catalog = db.catalog();
    let session = db.session();

    let cases: &[(&str, LogicalPlan)] = &[
        (
            "SELECT * FROM t WHERE key < 300 ORDER BY key",
            LogicalPlan::scan("t")
                .filter(Predicate::KeyBelow(300))
                .sort(),
        ),
        (
            "SELECT * FROM t JOIN v ON t.key = v.key WHERE t.key % 2 = 0",
            LogicalPlan::scan("t")
                .filter(Predicate::KeyModEq {
                    modulus: 2,
                    residue: 0,
                })
                .join(LogicalPlan::scan("v")),
        ),
        (
            "SELECT * FROM t JOIN v ON t.key = v.key GROUP BY key ORDER BY key",
            LogicalPlan::scan("t")
                .join(LogicalPlan::scan("v"))
                .aggregate()
                .sort(),
        ),
    ];

    for (sql, logical) in cases {
        let mut stream = session.query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let mut got: Vec<Vec<u64>> = Vec::new();
        while let Some(batch) = stream.next_batch().expect("streams") {
            assert!(batch.rows.len() <= 33, "batch cap respected");
            got.extend(batch.rows);
        }
        let reference = execute_naive(logical, &catalog).expect("naive evaluates");
        let want = reference.canonical_wide();
        got.sort_unstable();
        assert_eq!(
            got, want,
            "{sql}: session rows diverge from the naive executor"
        );
    }
}

// ---------- multi-way joins through SQL ----------

/// Drains a stream into rows.
fn drain_rows(stream: &mut wl_db::ResultStream) -> Vec<Vec<u64>> {
    let mut rows = Vec::new();
    while let Some(batch) = stream.next_batch().expect("streams") {
        rows.extend(batch.rows);
    }
    rows
}

#[test]
fn three_table_chain_query_matches_the_naive_oracle() {
    let db = Database::builder().dram_records(300).batch_rows(64).build();
    db.create_wisconsin("t", 300, 1, 5).expect("fresh");
    db.create_wisconsin("v", 300, 2, 5).expect("fresh");
    db.create_wisconsin("w", 300, 3, 5).expect("fresh");
    let session = db.session();

    let sql = "SELECT * FROM t JOIN v ON t.key = v.key JOIN w ON v.key = w.key \
               WHERE t.key < 100";
    let mut stream = session.query(sql).expect("plans");
    assert_eq!(
        stream.columns(),
        ["key", "t.payload", "v.payload", "w.payload"]
    );
    let mut got = drain_rows(&mut stream);
    got.sort_unstable();
    assert_eq!(got.len(), 100 * 2 * 3, "fanout product under the filter");

    let Statement::Select(select) = parse(sql).expect("parses") else {
        panic!("expected select")
    };
    let bound = bind(&select, &db.catalog()).expect("binds");
    let reference = execute_naive(&bound.logical, &db.catalog()).expect("naive evaluates");
    assert_eq!(got, reference.canonical_wide());
}

#[test]
fn explain_reports_the_chosen_join_order() {
    let db = Database::builder().dram_records(400).build();
    db.create_wisconsin("t", 200, 1, 1).expect("fresh");
    db.create_wisconsin("v", 2_000, 1, 1).expect("fresh");
    db.create_wisconsin("w", 200, 1, 1).expect("fresh");
    let mut session = db.session();
    let Response::Explain(mut stream) = session
        .execute(
            "EXPLAIN SELECT * FROM t JOIN v ON t.key = v.key JOIN w ON v.key = w.key \
             ORDER BY key",
        )
        .expect("executes")
    else {
        panic!("expected explain");
    };
    stream.drain().expect("runs");
    let report = stream.explain();
    assert!(report.contains("join order over 3 relations"), "{report}");
    assert!(report.contains("⋈"), "{report}");
    // Two per-edge evidence tables and the chain-join plan nodes.
    assert!(report.contains("join ~"), "{report}");
    assert!(report.contains("fold"), "{report}");
    assert!(report.contains("predicted vs measured"), "{report}");
}

/// Property-style loop: randomized 3–4 table chain and star queries,
/// checked against the n-way naive oracle, re-executed at DoP 4 — rows
/// and simulated counters must both be independent of the parallelism.
#[test]
fn random_multiway_sql_agrees_with_naive_at_any_dop() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0x3B17);
    for case in 0..6 {
        let n = rng.gen_range(3usize..5);
        let keys = rng.gen_range(80u64..250);
        let db = Database::builder().dram_records(250).batch_rows(37).build();
        let names = ["a", "b", "c", "d"];
        for name in &names[..n] {
            let fanout = rng.gen_range(1u64..3);
            db.create_wisconsin(name, keys, fanout, case as u64 + 1)
                .expect("fresh");
        }

        // Chain: each ON joins the previous table; star: all to `a`.
        let star = case % 2 == 1;
        let mut sql = String::from("SELECT * FROM a");
        for i in 1..n {
            let anchor = if star { "a" } else { names[i - 1] };
            sql.push_str(&format!(
                " JOIN {} ON {anchor}.key = {}.key",
                names[i], names[i]
            ));
        }
        if case % 3 == 0 {
            sql.push_str(&format!(" WHERE a.key < {}", keys / 2));
        }

        let mut session = db.session();
        session.execute("SET threads = 1").expect("sets");
        let mut stream = session.query(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let mut got = drain_rows(&mut stream);
        got.sort_unstable();
        let stats1 = stream.stats().expect("drained");

        let Statement::Select(select) = parse(&sql).expect("parses") else {
            panic!("expected select")
        };
        let bound = bind(&select, &db.catalog()).expect("binds");
        let reference = execute_naive(&bound.logical, &db.catalog()).expect("naive evaluates");
        assert_eq!(
            got,
            reference.canonical_wide(),
            "case {case} ({sql}) diverges from the oracle"
        );

        // Re-execute the same plan at DoP 4: identical rows, identical
        // counters (parallelism buys wall-clock only).
        let planned4 = planner::PlannedQuery {
            threads: 4,
            ..stream.planned().clone()
        };
        let pool = pmem_sim::BufferPool::new(250 * 80);
        let run4 = planner::execute(&planned4, &db.catalog(), db.device(), db.layer(), &pool)
            .expect("runs at DoP 4");
        assert_eq!(
            run4.output.canonical_wide(),
            got,
            "case {case}: rows changed with DoP"
        );
        assert_eq!(
            run4.stats.cl_reads, stats1.io.cl_reads,
            "case {case}: reads changed with DoP"
        );
        assert_eq!(
            run4.stats.cl_writes, stats1.io.cl_writes,
            "case {case}: writes changed with DoP"
        );
    }
}

// ---------- self-joins and aliases ----------

#[test]
fn self_join_with_alias_round_trips() {
    let db = Database::builder().dram_records(200).build();
    db.create_wisconsin("t", 150, 2, 9).expect("fresh");
    let session = db.session();
    let mut stream = session
        .query("SELECT key, t.payload, u.payload FROM t JOIN t AS u ON t.key = u.key")
        .expect("plans");
    assert_eq!(stream.columns(), ["key", "t.payload", "u.payload"]);
    let rows = drain_rows(&mut stream);
    // fanout 2 on both sides → 4 pairs per key.
    assert_eq!(rows.len(), 150 * 4);
}

#[test]
fn self_join_without_alias_is_a_span_carrying_error() {
    let db = Database::builder().build();
    db.create_wisconsin("t", 50, 1, 1).expect("fresh");
    let session = db.session();
    let sql = "SELECT * FROM t JOIN t ON t.key = t.key";
    let DbError::Sql(e) = session.query(sql).unwrap_err() else {
        panic!("expected SQL error")
    };
    assert!(e.message.contains("duplicate table name"), "{}", e.message);
    assert!(e.message.contains("AS"), "hint at aliasing: {}", e.message);
    assert_eq!(&sql[e.span.start..e.span.end], "t");
    assert_eq!(e.span.start, 21, "span on the second occurrence");
}

#[test]
fn multiway_binder_errors_carry_spans() {
    let db = Database::builder().build();
    db.create_wisconsin("t", 50, 1, 1).expect("fresh");
    db.create_wisconsin("v", 50, 1, 1).expect("fresh");
    db.create_wisconsin("w", 50, 1, 1).expect("fresh");
    let session = db.session();

    // Unknown alias inside a 3-table join condition.
    let sql = "SELECT * FROM t JOIN v ON t.key = v.key JOIN w ON nope.key = w.key";
    let DbError::Sql(e) = session.query(sql).unwrap_err() else {
        panic!("expected SQL error")
    };
    assert!(
        e.message.contains("unknown table reference \"nope\""),
        "{}",
        e.message
    );
    assert!(e.message.contains("in scope: t, v, w"), "{}", e.message);
    assert_eq!(&sql[e.span.start..e.span.end], "nope.key");

    // A join condition that fails to involve the newly joined table.
    let sql = "SELECT * FROM t JOIN v ON t.key = v.key JOIN w ON t.key = v.key";
    let DbError::Sql(e) = session.query(sql).unwrap_err() else {
        panic!("expected SQL error")
    };
    assert!(
        e.message.contains("must involve the joined table \"w\""),
        "{}",
        e.message
    );

    // A join condition referencing a table joined later.
    let sql = "SELECT * FROM t JOIN v ON w.key = v.key JOIN w ON t.key = w.key";
    let DbError::Sql(e) = session.query(sql).unwrap_err() else {
        panic!("expected SQL error")
    };
    assert!(e.message.contains("not yet in scope"), "{}", e.message);

    // Ambiguous unqualified payload across three tables.
    let sql = "SELECT payload FROM t JOIN v ON t.key = v.key JOIN w ON v.key = w.key";
    let DbError::Sql(e) = session.query(sql).unwrap_err() else {
        panic!("expected SQL error")
    };
    assert!(e.message.contains("ambiguous"), "{}", e.message);
    assert!(e.message.contains("w.payload"), "{}", e.message);

    // Unknown qualifier in the projection.
    let sql = "SELECT z.payload FROM t JOIN v ON t.key = v.key JOIN w ON v.key = w.key";
    let DbError::Sql(e) = session.query(sql).unwrap_err() else {
        panic!("expected SQL error")
    };
    assert!(
        e.message.contains("unknown table reference \"z\""),
        "{}",
        e.message
    );
    assert_eq!(&sql[e.span.start..e.span.end], "z");
}

// ---------- empty tables ----------

#[test]
fn empty_tables_flow_through_every_query_shape() {
    let db = Database::builder().dram_records(200).build();
    let mut session = db.session();
    let Response::Created { rows, .. } = session
        .execute("CREATE TABLE e AS WISCONSIN(0)")
        .expect("creates")
    else {
        panic!("expected created");
    };
    assert_eq!(rows, 0);
    db.create_wisconsin("t", 100, 2, 3).expect("fresh");

    for sql in [
        "SELECT * FROM e",
        "SELECT * FROM e WHERE key < 10 ORDER BY key",
        "SELECT * FROM e GROUP BY key",
        "SELECT * FROM e JOIN t ON e.key = t.key",
        "SELECT * FROM t JOIN e ON t.key = e.key",
        "SELECT * FROM e JOIN t ON e.key = t.key GROUP BY key ORDER BY key",
        "SELECT * FROM t JOIN e ON t.key = e.key JOIN t AS u ON e.key = u.key",
    ] {
        let mut stream = session.query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let rows = drain_rows(&mut stream);
        assert!(
            rows.is_empty(),
            "{sql}: expected no rows, got {}",
            rows.len()
        );
    }
}

// ---------- LIMIT short-circuits ----------

#[test]
fn limit_zero_never_executes_the_plan() {
    let db = Database::builder().dram_records(200).build();
    db.create_wisconsin("t", 2_000, 1, 7).expect("fresh");
    db.create_wisconsin("v", 2_000, 2, 7).expect("fresh");
    let session = db.session();

    // An expensive join + sort behind LIMIT 0: the first pull must not
    // run it, and the IO ledger must stay at zero.
    let mut stream = session
        .query("SELECT * FROM t JOIN v ON t.key = v.key ORDER BY key LIMIT 0")
        .expect("plans");
    assert!(stream.next_batch().expect("streams").is_none());
    let stats = stream.stats().expect("done");
    assert_eq!(stats.rows, 0);
    assert_eq!(stats.batches, 0);
    assert_eq!(stats.io.cl_reads, 0, "LIMIT 0 must not touch the device");
    assert_eq!(stats.io.cl_writes, 0, "LIMIT 0 must not touch the device");
    // The explain report still shows the plan, but must not present the
    // never-executed run's zeroed ledger as a measurement.
    let report = stream.explain();
    assert!(report.contains("chosen plan"), "{report}");
    assert!(
        !report.contains("predicted vs measured"),
        "no concordance for a run that never happened:\n{report}"
    );

    // A limit smaller than the first batch stops delivery at the limit.
    let mut stream = session
        .query("SELECT * FROM t ORDER BY key LIMIT 3")
        .expect("plans");
    let rows = drain_rows(&mut stream);
    assert_eq!(rows.len(), 3);
    assert_eq!(stream.stats().expect("done").rows, 3);
}

// ---------- lexer and SET range diagnostics ----------

#[test]
fn numeric_overflow_and_zero_knobs_are_span_carrying_errors() {
    let db = Database::builder().build();
    db.create_wisconsin("t", 50, 1, 1).expect("fresh");
    let mut session = db.session();

    // A literal past u64::MAX must error with the literal's span, and
    // the caret rendering must underline exactly it.
    let sql = "SELECT * FROM t WHERE key < 99999999999999999999999";
    let DbError::Sql(e) = session.execute(sql).unwrap_err() else {
        panic!("expected SQL error")
    };
    assert!(e.message.contains("out of range"), "{}", e.message);
    assert_eq!(&sql[e.span.start..e.span.end], "99999999999999999999999");
    let rendered = e.render(sql);
    assert!(
        rendered.contains(&"^".repeat("99999999999999999999999".len())),
        "caret must underline the literal:\n{rendered}"
    );

    // Underscore separators participate in the overflow check.
    let sql = "SET memory = 99_999_999_999_999_999_999_999";
    let DbError::Sql(e) = session.execute(sql).unwrap_err() else {
        panic!("expected SQL error")
    };
    assert!(e.message.contains("out of range"), "{}", e.message);

    // u64::MAX itself lexes; the memory knob reports its own range
    // error instead of panicking on overflow.
    let sql = "SET memory = 18446744073709551615";
    let DbError::Sql(e) = session.execute(sql).unwrap_err() else {
        panic!("expected SQL error")
    };
    assert!(e.message.contains("out of range"), "{}", e.message);

    // Zero knob values error with the value's span.
    for knob in ["threads", "batch", "lambda", "memory"] {
        let sql = format!("SET {knob} = 0");
        let DbError::Sql(e) = session.execute(&sql).unwrap_err() else {
            panic!("expected SQL error for {knob}")
        };
        assert!(
            e.message.contains("positive value"),
            "{knob}: {}",
            e.message
        );
        assert_eq!(&sql[e.span.start..e.span.end], "0", "{knob} span");
        let rendered = e.render(&sql);
        let caret_line = rendered.lines().nth(2).expect("caret line");
        assert_eq!(
            caret_line.trim(),
            "^",
            "caret must sit under the 0:\n{rendered}"
        );
    }
}

// ---------- session knob precedence ----------

#[test]
fn explicit_session_threads_outrank_the_environment() {
    // Whatever WL_THREADS the test process runs under (the CI matrix
    // uses 1 and 4), an explicit SET must win in the planned query.
    let db = Database::builder().build();
    db.create_wisconsin("t", 200, 1, 2).expect("fresh");
    let mut session = db.session();
    session.execute("SET threads = 3").expect("sets");
    let stream = session
        .query("SELECT * FROM t ORDER BY key")
        .expect("plans");
    assert_eq!(stream.planned().threads, 3);
}

// ---------- EXPLAIN through the statement interface ----------

#[test]
fn explain_streams_no_rows_but_reports_the_plan() {
    let db = Database::builder().build();
    db.create_wisconsin("t", 400, 1, 5).expect("fresh");
    let mut session = db.session();
    let Response::Explain(mut stream) = session
        .execute("EXPLAIN SELECT * FROM t ORDER BY key")
        .expect("executes")
    else {
        panic!("expected explain response");
    };
    stream.drain().expect("runs");
    let report = stream.explain();
    assert!(report.contains("sort via"), "{report}");
    assert!(report.contains("predicted vs measured"), "{report}");
    let Statement::Explain(_) = parse("EXPLAIN SELECT * FROM t").expect("parses") else {
        panic!("expected explain statement");
    };
}
