//! Integration tests for the `wl-db` facade: golden parse trees for
//! every supported clause, span-carrying error paths, and end-to-end
//! agreement between SQL sessions and the naive DRAM executor.

use planner::{execute_naive, LogicalPlan, OutputRows, Predicate};
use wl_db::{parse, Database, DbError, Response, Statement};

// ---------- golden parse trees, one per supported clause ----------

#[test]
fn golden_parse_trees_cover_every_clause() {
    let cases: &[(&str, &str)] = &[
        (
            "CREATE TABLE t AS WISCONSIN(10_000);",
            "create t as wisconsin(rows=10000, fanout=1, seed=42)\n",
        ),
        (
            "CREATE TABLE v AS WISCONSIN(1000, 4, 7);",
            "create v as wisconsin(rows=1000, fanout=4, seed=7)\n",
        ),
        ("DROP TABLE t;", "drop t\n"),
        ("SHOW TABLES;", "show tables\n"),
        ("SET threads = 8;", "set threads = 8\n"),
        (
            "SELECT * FROM t;",
            "select\n  project *\n  from t\n",
        ),
        (
            "SELECT key, payload FROM t WHERE key < 100;",
            "select\n  project key, payload\n  from t\n  where key < 100\n",
        ),
        (
            "SELECT * FROM t WHERE key >= 10 AND key % 3 = 1;",
            "select\n  project *\n  from t\n  where key >= 10\n  where key % 3 = 1\n",
        ),
        (
            "SELECT * FROM t INNER JOIN v ON t.key = v.key;",
            "select\n  project *\n  from t\n  join v on t.key = v.key\n",
        ),
        (
            "SELECT * FROM t GROUP BY key;",
            "select\n  project *\n  from t\n  group by key\n",
        ),
        (
            "SELECT * FROM t ORDER BY key LIMIT 5;",
            "select\n  project *\n  from t\n  order by key\n  limit 5\n",
        ),
        (
            "EXPLAIN SELECT * FROM t JOIN v ON t.key = v.key GROUP BY key ORDER BY key;",
            "explain select\n  project *\n  from t\n  join v on t.key = v.key\n  group by key\n  order by key\n",
        ),
    ];
    for (sql, golden) in cases {
        let stmt = parse(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        assert_eq!(&stmt.describe(), golden, "golden tree for {sql}");
    }
}

// ---------- error paths with spans ----------

#[test]
fn error_paths_carry_spans_into_the_source() {
    let db = Database::builder().build();
    db.create_wisconsin("t", 100, 1, 1).expect("fresh");
    let mut session = db.session();

    // Unknown table: binder error, span on the table name.
    let sql = "SELECT * FROM nosuch";
    let DbError::Sql(e) = session.execute(sql).unwrap_err() else {
        panic!("expected SQL error")
    };
    assert_eq!(e.message, "unknown table \"nosuch\"");
    assert_eq!(&sql[e.span.start..e.span.end], "nosuch");
    assert!(e.render(sql).contains("^^^^^^"), "caret under the span");

    // Type mismatch: parser error, span on the string literal.
    let sql = "SELECT * FROM t WHERE key < 'ten'";
    let DbError::Sql(e) = session.execute(sql).unwrap_err() else {
        panic!("expected SQL error")
    };
    assert!(e.message.contains("type mismatch"), "{}", e.message);
    assert_eq!(&sql[e.span.start..e.span.end], "'ten'");

    // Trailing tokens: parser error, span from the first extra token.
    let sql = "SHOW TABLES extra stuff";
    let DbError::Sql(e) = session.execute(sql).unwrap_err() else {
        panic!("expected SQL error")
    };
    assert!(e.message.contains("trailing tokens"), "{}", e.message);
    assert_eq!(&sql[e.span.start..e.span.end], "extra stuff");
}

// ---------- end-to-end: SQL sessions vs the naive executor ----------

#[test]
fn sql_results_agree_with_the_naive_executor() {
    let db = Database::builder().dram_records(150).batch_rows(33).build();
    db.create_wisconsin("t", 700, 1, 11).expect("fresh");
    db.create_wisconsin("v", 700, 3, 11).expect("fresh");
    let catalog = db.catalog();
    let session = db.session();

    let cases: &[(&str, LogicalPlan)] = &[
        (
            "SELECT * FROM t WHERE key < 300 ORDER BY key",
            LogicalPlan::scan("t")
                .filter(Predicate::KeyBelow(300))
                .sort(),
        ),
        (
            "SELECT * FROM t JOIN v ON t.key = v.key WHERE t.key % 2 = 0",
            LogicalPlan::scan("t")
                .filter(Predicate::KeyModEq {
                    modulus: 2,
                    residue: 0,
                })
                .join(LogicalPlan::scan("v")),
        ),
        (
            "SELECT * FROM t JOIN v ON t.key = v.key GROUP BY key ORDER BY key",
            LogicalPlan::scan("t")
                .join(LogicalPlan::scan("v"))
                .aggregate()
                .sort(),
        ),
    ];

    for (sql, logical) in cases {
        let mut stream = session.query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let mut got: Vec<Vec<u64>> = Vec::new();
        while let Some(batch) = stream.next_batch().expect("streams") {
            assert!(batch.rows.len() <= 33, "batch cap respected");
            got.extend(batch.rows);
        }
        let reference = execute_naive(logical, &catalog).expect("naive evaluates");
        use wisconsin::Record as _;
        let want: Vec<Vec<u64>> = match reference {
            OutputRows::Wis(rows) => rows.iter().map(|r| vec![r.key(), r.payload()]).collect(),
            OutputRows::Pairs(rows) => rows
                .iter()
                .map(|(l, r)| vec![l.key(), l.payload(), r.payload()])
                .collect(),
            OutputRows::Groups(rows) => rows
                .iter()
                .map(|g| vec![g.key, g.count, g.sum, g.min, g.max])
                .collect(),
        };
        let canon = |mut v: Vec<Vec<u64>>| {
            v.sort_unstable();
            v
        };
        assert_eq!(
            canon(got),
            canon(want),
            "{sql}: session rows diverge from the naive executor"
        );
    }
}

// ---------- session knob precedence ----------

#[test]
fn explicit_session_threads_outrank_the_environment() {
    // Whatever WL_THREADS the test process runs under (the CI matrix
    // uses 1 and 4), an explicit SET must win in the planned query.
    let db = Database::builder().build();
    db.create_wisconsin("t", 200, 1, 2).expect("fresh");
    let mut session = db.session();
    session.execute("SET threads = 3").expect("sets");
    let stream = session
        .query("SELECT * FROM t ORDER BY key")
        .expect("plans");
    assert_eq!(stream.planned().threads, 3);
}

// ---------- EXPLAIN through the statement interface ----------

#[test]
fn explain_streams_no_rows_but_reports_the_plan() {
    let db = Database::builder().build();
    db.create_wisconsin("t", 400, 1, 5).expect("fresh");
    let mut session = db.session();
    let Response::Explain(mut stream) = session
        .execute("EXPLAIN SELECT * FROM t ORDER BY key")
        .expect("executes")
    else {
        panic!("expected explain response");
    };
    stream.drain().expect("runs");
    let report = stream.explain();
    assert!(report.contains("sort via"), "{report}");
    assert!(report.contains("predicted vs measured"), "{report}");
    let Statement::Explain(_) = parse("EXPLAIN SELECT * FROM t").expect("parses") else {
        panic!("expected explain statement");
    };
}
