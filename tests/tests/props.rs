//! Property-based tests on the core invariants.

use pmem_sim::{BufferPool, LayerKind, PCollection, PmDevice, ReadCursor, Storage};
use proptest::prelude::*;
use wisconsin::{Permutation, Record, WisconsinRecord};
use write_limited::join::{expected_match_count, JoinAlgorithm, JoinContext};
use write_limited::sort::{cycle_sort, SortAlgorithm, SortContext};
use write_limited::stats::kendall_tau;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every sort algorithm returns exactly the input keys, sorted.
    #[test]
    fn sorts_are_permutation_preserving(
        keys in prop::collection::vec(0u64..10_000, 1..400),
        m_records in 1usize..64,
        algo_pick in 0usize..5,
    ) {
        let algo = [
            SortAlgorithm::ExMS,
            SortAlgorithm::SegS { x: 0.5 },
            SortAlgorithm::HybS { x: 0.5 },
            SortAlgorithm::LaS,
            SortAlgorithm::SelS,
        ][algo_pick];
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            keys.iter().enumerate().map(|(i, &k)| {
                WisconsinRecord::from_key(k).with_payload(i as u64)
            }),
        );
        let pool = BufferPool::new(m_records * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = algo.run(&input, &ctx, "sorted").expect("valid params");

        let mut expect = keys.clone();
        expect.sort_unstable();
        let got: Vec<u64> = out.to_vec_uncounted().iter().map(|r| r.key()).collect();
        prop_assert_eq!(got, expect);
    }

    /// Every join algorithm produces exactly the reference match count.
    #[test]
    fn joins_match_reference_count(
        left_keys in prop::collection::vec(0u64..50, 1..150),
        right_keys in prop::collection::vec(0u64..80, 1..300),
        m_records in 8usize..64,
        algo_pick in 0usize..6,
    ) {
        let algo = [
            JoinAlgorithm::NLJ,
            JoinAlgorithm::GJ,
            JoinAlgorithm::HJ,
            JoinAlgorithm::HybJ { x: 0.5, y: 0.5 },
            JoinAlgorithm::SegJ { frac: 0.5 },
            JoinAlgorithm::LaJ,
        ][algo_pick];
        let dev = PmDevice::paper_default();
        let left = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            left_keys.iter().map(|&k| WisconsinRecord::from_key(k)),
        );
        let right = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "V",
            right_keys.iter().map(|&k| WisconsinRecord::from_key(k)),
        );
        let pool = BufferPool::new(m_records * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let want = expected_match_count(&left, &right);
        match algo.run(&left, &right, &ctx, "out") {
            Ok(out) => prop_assert_eq!(out.len() as u64, want, "{}", algo.label()),
            Err(_) => {
                // Only the Grace-family may reject, and only when the
                // applicability condition genuinely fails.
                prop_assert!(!ctx.grace_applicable::<WisconsinRecord>(left.len()));
            }
        }
    }

    /// The workload permutation is a bijection for arbitrary n and seed.
    #[test]
    fn permutation_is_bijective(n in 1u64..3000, seed in any::<u64>()) {
        let p = Permutation::new(n, seed);
        let mut seen = vec![false; n as usize];
        for i in 0..n {
            let v = p.apply(i);
            prop_assert!(v < n);
            prop_assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    /// Cycle sort agrees with std sort and never writes more than n.
    #[test]
    fn cycle_sort_matches_std(mut v in prop::collection::vec(0u32..1000, 0..200)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        let writes = cycle_sort(&mut v);
        prop_assert_eq!(v, expect);
        prop_assert!(writes <= 200);
    }

    /// Storage round-trips arbitrary chunked appends on every layer.
    #[test]
    fn storage_roundtrips_on_all_layers(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..300), 1..20),
        layer_pick in 0usize..4,
    ) {
        let layer = LayerKind::ALL[layer_pick];
        let dev = PmDevice::paper_default();
        let mut storage = Storage::new(layer, dev.config());
        let mut expect = Vec::new();
        for chunk in &chunks {
            storage.append(chunk, &dev);
            expect.extend_from_slice(chunk);
        }
        let mut got = vec![0u8; expect.len()];
        storage.read_at(0, &mut got, &mut ReadCursor::new(), &dev);
        prop_assert_eq!(got, expect);
    }

    /// Sequential-scan read accounting is exact: one cacheline counted
    /// per 64 bytes, regardless of record size (blocked memory).
    #[test]
    fn scan_accounting_is_exact(n in 1usize..2000) {
        let dev = PmDevice::paper_default();
        let mut col = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "c");
        {
            let _pause = dev.metrics().pause();
            for i in 0..n as u64 {
                col.append(&i);
            }
        }
        let before = dev.snapshot();
        let count = col.reader().count();
        let delta = dev.snapshot().since(&before);
        prop_assert_eq!(count, n);
        prop_assert_eq!(delta.cl_reads, col.buffers());
        prop_assert_eq!(delta.cl_writes, 0);
    }

    /// Kendall's τ is 1 against itself and -1 against its reverse for
    /// any strictly increasing sequence.
    #[test]
    fn kendall_tau_extremes(n in 2usize..50) {
        let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let rev: Vec<f64> = a.iter().rev().copied().collect();
        prop_assert!((kendall_tau(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        prop_assert!((kendall_tau(&a, &rev).unwrap() + 1.0).abs() < 1e-12);
    }
}
