//! Property-based tests on the core invariants.
//!
//! The original suite used `proptest`; this environment builds offline,
//! so the same properties are exercised with deterministic seeded
//! sampling — each case draws its inputs from a fixed-seed generator and
//! runs a few dozen iterations, which keeps failures reproducible by
//! construction (the failing iteration index pins the input).

use pmem_sim::{BufferPool, LayerKind, PCollection, PmDevice, ReadCursor, Storage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wisconsin::{Permutation, Record, WisconsinRecord};
use write_limited::join::{expected_match_count, JoinAlgorithm, JoinContext};
use write_limited::sort::{cycle_sort, SortAlgorithm, SortContext};
use write_limited::stats::kendall_tau;

const CASES: usize = 48;

/// Every sort algorithm returns exactly the input keys, sorted.
#[test]
fn sorts_are_permutation_preserving() {
    let algos = [
        SortAlgorithm::ExMS,
        SortAlgorithm::SegS { x: 0.5 },
        SortAlgorithm::HybS { x: 0.5 },
        SortAlgorithm::LaS,
        SortAlgorithm::SelS,
    ];
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for case in 0..CASES {
        let n = rng.gen_range(1usize..400);
        let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..10_000)).collect();
        let m_records = rng.gen_range(1usize..64);
        let algo = algos[case % algos.len()];

        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            keys.iter()
                .enumerate()
                .map(|(i, &k)| WisconsinRecord::from_key(k).with_payload(i as u64)),
        );
        let pool = BufferPool::new(m_records * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = algo.run(&input, &ctx, "sorted").expect("valid params");

        let mut expect = keys.clone();
        expect.sort_unstable();
        let got: Vec<u64> = out.to_vec_uncounted().iter().map(|r| r.key()).collect();
        assert_eq!(
            got,
            expect,
            "case {case}: {} n={n} M={m_records}",
            algo.label()
        );
    }
}

/// Every join algorithm produces exactly the reference match count.
#[test]
fn joins_match_reference_count() {
    let algos = [
        JoinAlgorithm::NLJ,
        JoinAlgorithm::GJ,
        JoinAlgorithm::HJ,
        JoinAlgorithm::HybJ { x: 0.5, y: 0.5 },
        JoinAlgorithm::SegJ { frac: 0.5 },
        JoinAlgorithm::LaJ,
    ];
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for case in 0..CASES {
        let left_n = rng.gen_range(1usize..150);
        let right_n = rng.gen_range(1usize..300);
        let left_keys: Vec<u64> = (0..left_n).map(|_| rng.gen_range(0u64..50)).collect();
        let right_keys: Vec<u64> = (0..right_n).map(|_| rng.gen_range(0u64..80)).collect();
        let m_records = rng.gen_range(8usize..64);
        let algo = algos[case % algos.len()];

        let dev = PmDevice::paper_default();
        let left = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            left_keys.iter().map(|&k| WisconsinRecord::from_key(k)),
        );
        let right = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "V",
            right_keys.iter().map(|&k| WisconsinRecord::from_key(k)),
        );
        let pool = BufferPool::new(m_records * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let want = expected_match_count(&left, &right);
        match algo.run(&left, &right, &ctx, "out") {
            Ok(out) => assert_eq!(out.len() as u64, want, "case {case}: {}", algo.label()),
            Err(_) => {
                // Only the Grace-family may reject, and only when the
                // applicability condition genuinely fails.
                assert!(
                    !ctx.grace_applicable::<WisconsinRecord>(left.len()),
                    "case {case}: {} rejected an applicable setting",
                    algo.label()
                );
            }
        }
    }
}

/// The workload permutation is a bijection for arbitrary n and seed.
#[test]
fn permutation_is_bijective() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..CASES {
        let n = rng.gen_range(1u64..3000);
        let seed: u64 = rng.gen();
        let p = Permutation::new(n, seed);
        let mut seen = vec![false; n as usize];
        for i in 0..n {
            let v = p.apply(i);
            assert!(v < n, "n={n} seed={seed}: value {v} out of range");
            assert!(!seen[v as usize], "n={n} seed={seed}: duplicate {v}");
            seen[v as usize] = true;
        }
    }
}

/// Cycle sort agrees with std sort and never writes more than n.
#[test]
fn cycle_sort_matches_std() {
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    for case in 0..CASES {
        let n = rng.gen_range(0usize..200);
        let mut v: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..1000)).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        let writes = cycle_sort(&mut v);
        assert_eq!(v, expect, "case {case}");
        assert!(writes <= 200, "case {case}: {writes} writes");
    }
}

/// Storage round-trips arbitrary chunked appends on every layer.
#[test]
fn storage_roundtrips_on_all_layers() {
    let mut rng = StdRng::seed_from_u64(0xFACADE);
    for case in 0..CASES {
        let layer = LayerKind::ALL[case % LayerKind::ALL.len()];
        let n_chunks = rng.gen_range(1usize..20);
        let chunks: Vec<Vec<u8>> = (0..n_chunks)
            .map(|_| {
                let len = rng.gen_range(1usize..300);
                (0..len).map(|_| rng.gen::<u8>()).collect()
            })
            .collect();
        let dev = PmDevice::paper_default();
        let mut storage = Storage::new(layer, dev.config());
        let mut expect = Vec::new();
        for chunk in &chunks {
            storage.append(chunk, &dev);
            expect.extend_from_slice(chunk);
        }
        let mut got = vec![0u8; expect.len()];
        storage.read_at(0, &mut got, &mut ReadCursor::new(), &dev);
        assert_eq!(got, expect, "case {case} on {}", layer.label());
    }
}

/// Sequential-scan read accounting is exact: one cacheline counted
/// per 64 bytes, regardless of record size (blocked memory).
#[test]
fn scan_accounting_is_exact() {
    let mut rng = StdRng::seed_from_u64(0xACC);
    for case in 0..CASES {
        let n = rng.gen_range(1usize..2000);
        let dev = PmDevice::paper_default();
        let mut col = PCollection::<u64>::new(&dev, LayerKind::BlockedMemory, "c");
        {
            let _pause = dev.metrics().pause();
            for i in 0..n as u64 {
                col.append(&i);
            }
        }
        let before = dev.snapshot();
        let count = col.reader().count();
        let delta = dev.snapshot().since(&before);
        assert_eq!(count, n, "case {case}");
        assert_eq!(delta.cl_reads, col.buffers(), "case {case}: n={n}");
        assert_eq!(delta.cl_writes, 0, "case {case}");
    }
}

/// Kendall's τ is 1 against itself and -1 against its reverse for
/// any strictly increasing sequence.
#[test]
fn kendall_tau_extremes() {
    for n in 2usize..50 {
        let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let rev: Vec<f64> = a.iter().rev().copied().collect();
        assert!((kendall_tau(&a, &a).unwrap() - 1.0).abs() < 1e-12, "n={n}");
        assert!(
            (kendall_tau(&a, &rev).unwrap() + 1.0).abs() < 1e-12,
            "n={n}"
        );
    }
}
