//! Crash-recovery integration tests: the durable database reopened
//! after kills, torn tails, and deliberate corruption.
//!
//! The randomized loop mirrors `repro --crash` at test scale: a
//! fault-free oracle measures the workload's durable byte budget, then
//! every seed arms a kill at a random offset inside it, runs until the
//! simulated process dies, reopens, and asserts the recovered state is
//! exactly the committed statement prefix (the in-flight statement may
//! land fully or not at all — nothing else). Runs unchanged at DoP 1
//! and under `WL_THREADS=4`: recovery is deterministic either way.

use pmem_sim::FaultPlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use wl_db::durable::read_checkpoint;
use wl_db::{Database, DbError, Response};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("wl-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Sorted key multiset per table, read back from the post-recovery
/// checkpoint (reopen always rewrites it with the full catalog).
fn recovered_keys(dir: &Path) -> BTreeMap<String, Vec<u64>> {
    let ckpt = read_checkpoint(dir)
        .expect("checkpoint readable")
        .expect("checkpoint present after reopen");
    let mut state = BTreeMap::new();
    for table in ckpt.tables {
        let mut keys: Vec<u64> = table.records.iter().map(|r| r.attrs[0]).collect();
        keys.sort_unstable();
        state.insert(table.name, keys);
    }
    state
}

#[test]
fn sql_session_state_survives_a_reopen() {
    let dir = tmpdir("sql");
    {
        let db = Database::open(&dir).expect("opens fresh");
        let mut s = db.session();
        s.execute("CREATE TABLE t AS WISCONSIN(500)").expect("ddl");
        s.execute("INSERT INTO t VALUES (500), (501)").expect("dml");
        let Response::Checkpointed { tables, rows } = s.execute("CHECKPOINT").expect("ckpt") else {
            panic!("expected checkpoint response");
        };
        assert_eq!((tables, rows), (1, 502));
        s.execute("CREATE TABLE v AS WISCONSIN(100, 2, 5)")
            .expect("post-checkpoint ddl lands in the wal");
    }
    let db = Database::reopen(&dir).expect("recovers");
    let report = db.recovery_report().expect("durable open");
    assert!(!report.fresh);
    assert_eq!(report.tables, 2);
    assert_eq!(report.rows, 502 + 200);
    assert_eq!(
        report.replayed_records, 1,
        "only the post-checkpoint create"
    );
    // The recovered tables answer queries like the originals did.
    let s = db.session();
    let mut stream = s
        .query("SELECT * FROM t JOIN v ON t.key = v.key WHERE t.key < 50 ORDER BY key")
        .expect("plans");
    let mut rows = 0;
    while let Some(b) = stream.next_batch().expect("streams") {
        rows += b.rows.len();
    }
    assert_eq!(rows, 100, "50 keys × fanout 2");
    let m = db.metrics_snapshot();
    assert_eq!(m.recoveries, 1);
    assert_eq!(m.replayed_records, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The scripted workload for the kill loop, mirrored by a logical
/// model. Small tables keep 100+ seeded trials cheap.
fn ops() -> Vec<(&'static str, u64)> {
    // (op-code, arg): c = create (arg = rows), i = insert (arg = key
    // count), k = checkpoint, d = drop. Encoded flat so the model and
    // the executor cannot drift apart.
    vec![
        ("c:t", 150),
        ("i:t", 3),
        ("k", 0),
        ("c:v", 60),
        ("d:v", 0),
        ("c:v", 40),
        ("i:v", 2),
        ("c:w", 30),
    ]
}

fn apply_op(db: &Database, op: &(&str, u64)) -> Result<(), wl_db::DdlError> {
    let (code, arg) = *op;
    match code {
        "k" => db.checkpoint().map(|_| ()),
        _ => {
            let (kind, name) = code.split_once(':').expect("op code");
            match kind {
                "c" => db.create_wisconsin(name, arg, 1, 7).map(|_| ()),
                "i" => {
                    let base = 10_000;
                    let keys: Vec<u64> = (base..base + arg).collect();
                    db.insert_keys(name, &keys).map(|_| ())
                }
                "d" => db.drop_table(name).map(|_| ()),
                other => unreachable!("op kind {other}"),
            }
        }
    }
}

/// `states[i]` = expected sorted key multisets after `i` committed ops.
fn model() -> Vec<BTreeMap<String, Vec<u64>>> {
    let mut states = vec![BTreeMap::new()];
    let mut cur: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for (code, arg) in ops() {
        match code.split_once(':') {
            None => {} // checkpoint
            Some(("c", name)) => {
                cur.insert(name.into(), (0..arg).collect());
            }
            Some(("i", name)) => {
                let t = cur.get_mut(name).expect("live table");
                t.extend(10_000..10_000 + arg);
                t.sort_unstable();
            }
            Some(("d", name)) => {
                cur.remove(name);
            }
            Some((other, _)) => unreachable!("op kind {other}"),
        }
        states.push(cur.clone());
    }
    states
}

#[test]
fn randomized_kills_recover_the_committed_prefix() {
    let script = ops();
    let states = model();

    // Oracle: durable bytes of the fault-free run.
    let dir = tmpdir("oracle");
    let total = {
        let db = Database::open(&dir).expect("oracle opens");
        db.device().arm_faults(FaultPlan::observe());
        for op in &script {
            apply_op(&db, op).expect("oracle is fault-free");
        }
        db.device().fault_bytes_written()
    };
    let _ = std::fs::remove_dir_all(&dir);
    assert!(total > 0);

    // CI runs the whole suite twice (DoP 1 and WL_THREADS=4); the full
    // 100+-seed bar is split across the two runs and also enforced by
    // `repro --crash` (120 seeds).
    let seeds: u64 = match std::env::var("WL_CRASH_SEEDS") {
        Ok(v) => v.parse().expect("WL_CRASH_SEEDS must be an integer"),
        Err(_) => 60,
    };
    for seed in 0..seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let offset = rng.gen_range(1..total + 1);
        let plan = match seed % 4 {
            0 => FaultPlan::kill_at(offset, true, seed),
            3 => FaultPlan::enospc_at(offset),
            _ => FaultPlan::kill_at(offset, false, seed),
        };
        let dir = tmpdir(&format!("kill-{seed}"));
        let mut acked = 0;
        {
            let db = Database::open(&dir).expect("trial opens before arming");
            db.device().arm_faults(plan);
            for op in &script {
                match apply_op(&db, op) {
                    Ok(()) => acked += 1,
                    Err(e) => {
                        // Typed failure, never a panic; the message
                        // carries the path of the file that died.
                        assert!(
                            format!("{e}").contains(dir.to_str().unwrap()),
                            "seed {seed}: error lost the path: {e}"
                        );
                        break;
                    }
                }
            }
        }
        let db = Database::reopen(&dir)
            .unwrap_or_else(|e| panic!("seed {seed} (offset {offset}): reopen failed: {e}"));
        drop(db);
        let got = recovered_keys(&dir);
        let exact = got == states[acked];
        let plus_one = acked < script.len() && got == states[acked + 1];
        assert!(
            exact || plus_one,
            "seed {seed} (offset {offset}): recovered state matches neither \
             prefix {acked} nor {}",
            acked + 1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn truncated_wal_tail_is_dropped_not_fatal() {
    let dir = tmpdir("tail");
    {
        let db = Database::open(&dir).expect("opens");
        db.create_wisconsin("t", 50, 1, 1).expect("logged");
        db.create_wisconsin("v", 20, 1, 1).expect("logged");
    }
    // Cut into the last frame: the second create's record is torn away,
    // the first survives.
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).expect("wal readable");
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).expect("truncate");
    let db = Database::reopen(&dir).expect("torn tail is a valid crash state");
    let report = db.recovery_report().expect("durable");
    assert!(report.dropped_wal_bytes > 0, "the torn frame was counted");
    assert_eq!(db.tables(), vec![("t".to_string(), 50)]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_log_corruption_is_a_typed_error() {
    let dir = tmpdir("midlog");
    {
        let db = Database::open(&dir).expect("opens");
        db.create_wisconsin("t", 50, 1, 1).expect("logged");
        db.create_wisconsin("v", 20, 1, 1).expect("logged");
    }
    // Flip a payload byte of the FIRST record: bytes follow it, so this
    // cannot be a torn tail — recovery must refuse, naming the file.
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).expect("wal readable");
    bytes[30] ^= 0xFF;
    std::fs::write(&wal, &bytes).expect("corrupt");
    let err = Database::reopen(&dir).expect_err("mid-log corruption detected");
    let msg = err.to_string();
    assert!(msg.contains("wal.log"), "error names the file: {msg}");
    assert!(msg.contains("+"), "error carries an offset: {msg}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_is_a_typed_error() {
    let dir = tmpdir("ckpt");
    {
        let db = Database::open(&dir).expect("opens");
        db.create_wisconsin("t", 50, 1, 1).expect("logged");
        db.checkpoint().expect("materializes");
    }
    let ckpt = dir.join("checkpoint.bin");
    let mut bytes = std::fs::read(&ckpt).expect("checkpoint readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&ckpt, &bytes).expect("corrupt");
    let err = Database::reopen(&dir).expect_err("checkpoints are published atomically");
    assert!(
        err.to_string().contains("checkpoint.bin"),
        "error names the file: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn enospc_surfaces_as_a_typed_error_and_preserves_acked_state() {
    let dir = tmpdir("enospc");
    {
        let db = Database::open(&dir).expect("opens");
        db.create_wisconsin("t", 50, 1, 1).expect("fits");
        db.device().arm_faults(FaultPlan::enospc_at(1));
        let err = db
            .create_wisconsin("v", 20, 1, 1)
            .expect_err("no space for the wal record");
        let msg = format!("{err}");
        assert!(msg.contains("ENOSPC"), "cause surfaces: {msg}");
        // Later statements keep failing — the device is out of space.
        assert!(db.insert_keys("t", &[99]).is_err());
    }
    let db = Database::reopen(&dir).expect("recovers the acked prefix");
    assert_eq!(db.tables(), vec![("t".to_string(), 50)]);
    let mut err: Option<DbError> = None;
    let mut s = db.session();
    if let Err(e) = s.execute("SELECT * FROM v") {
        err = Some(e);
    }
    assert!(err.is_some(), "v was never acknowledged");
    let _ = std::fs::remove_dir_all(&dir);
}
