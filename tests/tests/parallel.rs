//! Determinism of parallel partition execution.
//!
//! The worker pool must be invisible in everything but wall-clock: for
//! every join and sort algorithm, execution at any degree of parallelism
//! has to produce the same rows in the same order and charge the same
//! simulated traffic as the serial run. These property-style tests sweep
//! the full algorithm line-up at several DoPs against the DoP-1 run.

use pmem_sim::{BufferPool, IoStats, LayerKind, PCollection, PmDevice};
use wisconsin::{join_input, sort_input, KeyOrder, Record, WisconsinRecord};
use wl_runtime::OpCtx;
use write_limited::join::{JoinAlgorithm, JoinContext, PARTITION_MORSEL_RECORDS};
use write_limited::pipeline::{filtered_iterate_join, DeferredFilter};
use write_limited::sort::{SortAlgorithm, SortContext};

const DOPS: [usize; 3] = [2, 3, 8];

#[test]
fn device_layer_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PmDevice>();
    assert_send_sync::<pmem_sim::Pm>();
    assert_send_sync::<pmem_sim::Metrics>();
    assert_send_sync::<BufferPool>();
    assert_send_sync::<PCollection<WisconsinRecord>>();
    assert_send_sync::<JoinContext<'static>>();
    assert_send_sync::<SortContext<'static>>();
}

fn run_join(
    algo: JoinAlgorithm,
    t: u64,
    fanout: u64,
    m_records: usize,
    threads: usize,
) -> (Vec<(u64, u64, u64)>, IoStats) {
    let dev = PmDevice::paper_default();
    let w = join_input(t, fanout, 41);
    let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
    let right = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
    let pool = BufferPool::new(m_records * 80);
    let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
    let before = dev.snapshot();
    let out = algo.run(&left, &right, &ctx, "out").expect("applicable");
    let stats = dev.snapshot().since(&before);
    // Produced order, not canonicalized: the flush protocol guarantees
    // byte-identical output order, which is stronger than multiset
    // equality and what downstream operators observe.
    let rows = out
        .to_vec_uncounted()
        .iter()
        .map(|p| (p.left.key(), p.left.payload(), p.right.payload()))
        .collect();
    (rows, stats)
}

#[test]
fn every_join_algorithm_is_dop_invariant() {
    let algos = [
        JoinAlgorithm::NLJ,
        JoinAlgorithm::GJ,
        JoinAlgorithm::HJ,
        JoinAlgorithm::HybJ { x: 0.6, y: 0.4 },
        JoinAlgorithm::SegJ { frac: 0.5 },
        JoinAlgorithm::SegJ { frac: 0.0 },
        JoinAlgorithm::LaJ,
        JoinAlgorithm::SMJ { x: 0.5 },
    ];
    for algo in algos {
        let (rows1, io1) = run_join(algo, 900, 6, 70, 1);
        for threads in DOPS {
            let (rows, io) = run_join(algo, 900, 6, 70, threads);
            assert_eq!(
                rows,
                rows1,
                "{}: rows differ at DoP {threads}",
                algo.label()
            );
            assert_eq!(
                io,
                io1,
                "{}: traffic differs at DoP {threads}",
                algo.label()
            );
        }
    }
}

#[test]
fn morsel_spanning_grace_join_is_dop_invariant() {
    // Inputs larger than one morsel exercise the parallel phase-1 grid.
    let t = PARTITION_MORSEL_RECORDS as u64 + 3000;
    let (rows1, io1) = run_join(JoinAlgorithm::GJ, t, 2, 1600, 1);
    for threads in DOPS {
        let (rows, io) = run_join(JoinAlgorithm::GJ, t, 2, 1600, threads);
        assert_eq!(rows, rows1, "rows differ at DoP {threads}");
        assert_eq!(io, io1, "traffic differs at DoP {threads}");
    }
}

fn run_sort(algo: SortAlgorithm, n: u64, m_records: usize, threads: usize) -> (Vec<u64>, IoStats) {
    let dev = PmDevice::paper_default();
    let input = PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "S",
        sort_input(n, KeyOrder::Random, 17),
    );
    let pool = BufferPool::new(m_records * 80);
    let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
    let before = dev.snapshot();
    let out = algo.run(&input, &ctx, "sorted").expect("valid");
    let stats = dev.snapshot().since(&before);
    let keys = out
        .to_vec_uncounted()
        .iter()
        .map(wisconsin::Record::key)
        .collect();
    (keys, stats)
}

#[test]
fn every_sort_algorithm_is_dop_invariant() {
    let algos = [
        SortAlgorithm::ExMS,
        SortAlgorithm::SegS { x: 0.5 },
        SortAlgorithm::HybS { x: 0.5 },
        SortAlgorithm::LaS,
        SortAlgorithm::SelS,
    ];
    for algo in algos {
        // M = 64 records forces a small merge fan-in, so ExMS needs
        // several (parallelizable) intermediate merge passes.
        let (keys1, io1) = run_sort(algo, 6000, 64, 1);
        assert!(keys1.windows(2).all(|w| w[0] <= w[1]), "{}", algo.label());
        for threads in DOPS {
            let (keys, io) = run_sort(algo, 6000, 64, threads);
            assert_eq!(
                keys,
                keys1,
                "{}: keys differ at DoP {threads}",
                algo.label()
            );
            assert_eq!(
                io,
                io1,
                "{}: traffic differs at DoP {threads}",
                algo.label()
            );
        }
    }
}

#[test]
fn deferred_pipeline_join_is_dop_invariant() {
    let run = |threads: usize| {
        let dev = PmDevice::paper_default();
        let w = join_input(600, 4, 23);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(40 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
        let mut rt = OpCtx::new(dev.lambda());
        // Selective filter: materializes after the first pass, so the
        // remaining passes run through the parallel tail.
        let mut filter = DeferredFilter::new(&left, |r| r.key() % 20 == 0, 0.05, &mut rt);
        let before = dev.snapshot();
        let out =
            filtered_iterate_join(&mut filter, &right, &ctx, &mut rt, "out").expect("applicable");
        let stats = dev.snapshot().since(&before);
        assert!(filter.is_materialized());
        let rows: Vec<(u64, u64)> = out
            .to_vec_uncounted()
            .iter()
            .map(|p| (p.left.key(), p.right.payload()))
            .collect();
        (rows, stats)
    };
    let (rows1, io1) = run(1);
    for threads in DOPS {
        let (rows, io) = run(threads);
        assert_eq!(rows, rows1, "rows differ at DoP {threads}");
        assert_eq!(io, io1, "traffic differs at DoP {threads}");
    }
}

#[test]
fn planned_query_execution_is_dop_invariant() {
    use planner::{execute, Catalog, LogicalPlan, Planner, Predicate};

    let dev = PmDevice::paper_default();
    let w = join_input(800, 4, 5);
    let left = std::sync::Arc::new(PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "T",
        w.left,
    ));
    let right = std::sync::Arc::new(PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "V",
        w.right,
    ));
    let mut cat = Catalog::new();
    cat.add_table("T", left, 800);
    cat.add_table("V", right, 800);

    let logical = LogicalPlan::scan("T")
        .filter(Predicate::KeyBelow(400))
        .join(LogicalPlan::scan("V"));
    let pool = BufferPool::new(60 * 80);
    let planned = Planner::for_device(&dev, &pool, LayerKind::BlockedMemory)
        .plan(&logical, &cat)
        .expect("plans");

    // Same physical plan, executed at different degrees: identical rows
    // and identical counted traffic.
    let mut runs = Vec::new();
    for threads in [1, 4] {
        let mut planned = planned.clone();
        planned.threads = threads;
        dev.reset_metrics();
        let executed =
            execute(&planned, &cat, &dev, LayerKind::BlockedMemory, &pool).expect("executes");
        runs.push((executed.output.canonical(), executed.stats));
    }
    assert_eq!(runs[0].0, runs[1].0, "rows differ across DoP");
    assert_eq!(runs[0].1, runs[1].1, "traffic differs across DoP");
}

#[test]
fn grace_profile_ledgers_reconcile_with_device_totals() {
    use write_limited::join::grace_join_profiled;

    let run = |threads: usize| {
        let dev = PmDevice::paper_default();
        let w = join_input(2000, 5, 3);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(300 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
        let before = dev.snapshot();
        let (_, profile) = grace_join_profiled(&left, &right, &ctx, "out").expect("applicable");
        (profile, dev.snapshot().since(&before))
    };
    let (p1, total1) = run(1);
    for threads in [1, 4] {
        let (profile, total) = run(threads);
        assert_eq!(total, total1, "device totals differ at DoP {threads}");
        assert_eq!(
            profile.per_partition, p1.per_partition,
            "per-partition ledgers differ at DoP {threads}"
        );
        // The phase ledgers cover the whole run: morsel costs sum to the
        // partitioning phase, and partition costs account for all
        // remaining traffic (build/probe reads + output writes).
        let morsels: IoStats = profile
            .per_morsel_left
            .iter()
            .chain(&profile.per_morsel_right)
            .fold(IoStats::default(), |acc, s| acc.plus(s));
        assert_eq!(morsels, profile.partition_phase);
        let parts: IoStats = profile
            .per_partition
            .iter()
            .fold(IoStats::default(), |acc, s| acc.plus(s));
        assert_eq!(parts, total.since(&profile.partition_phase));
    }
}
