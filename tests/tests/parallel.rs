//! Determinism of parallel partition execution.
//!
//! The worker pool must be invisible in everything but wall-clock: for
//! every join and sort algorithm, execution at any degree of parallelism
//! has to produce the same rows in the same order and charge the same
//! simulated traffic as the serial run. These property-style tests sweep
//! the full algorithm line-up at several DoPs against the DoP-1 run.

use pmem_sim::{BufferPool, IoStats, LayerKind, PCollection, PmDevice};
use wisconsin::{join_input, sort_input, KeyOrder, Record, WisconsinRecord};
use wl_runtime::OpCtx;
use write_limited::join::{JoinAlgorithm, JoinContext, PARTITION_MORSEL_RECORDS};
use write_limited::pipeline::{filtered_iterate_join, DeferredFilter};
use write_limited::sort::{SortAlgorithm, SortContext};

const DOPS: [usize; 3] = [2, 3, 8];

#[test]
fn device_layer_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PmDevice>();
    assert_send_sync::<pmem_sim::Pm>();
    assert_send_sync::<pmem_sim::Metrics>();
    assert_send_sync::<BufferPool>();
    assert_send_sync::<PCollection<WisconsinRecord>>();
    assert_send_sync::<JoinContext<'static>>();
    assert_send_sync::<SortContext<'static>>();
}

fn run_join(
    algo: JoinAlgorithm,
    t: u64,
    fanout: u64,
    m_records: usize,
    threads: usize,
) -> (Vec<(u64, u64, u64)>, IoStats) {
    let dev = PmDevice::paper_default();
    let w = join_input(t, fanout, 41);
    let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
    let right = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
    let pool = BufferPool::new(m_records * 80);
    let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
    let before = dev.snapshot();
    let out = algo.run(&left, &right, &ctx, "out").expect("applicable");
    let stats = dev.snapshot().since(&before);
    // Produced order, not canonicalized: the flush protocol guarantees
    // byte-identical output order, which is stronger than multiset
    // equality and what downstream operators observe.
    let rows = out
        .to_vec_uncounted()
        .iter()
        .map(|p| (p.left.key(), p.left.payload(), p.right.payload()))
        .collect();
    (rows, stats)
}

#[test]
fn every_join_algorithm_is_dop_invariant() {
    let algos = [
        JoinAlgorithm::NLJ,
        JoinAlgorithm::GJ,
        JoinAlgorithm::HJ,
        JoinAlgorithm::HybJ { x: 0.6, y: 0.4 },
        JoinAlgorithm::SegJ { frac: 0.5 },
        JoinAlgorithm::SegJ { frac: 0.0 },
        JoinAlgorithm::LaJ,
        JoinAlgorithm::SMJ { x: 0.5 },
    ];
    for algo in algos {
        let (rows1, io1) = run_join(algo, 900, 6, 70, 1);
        for threads in DOPS {
            let (rows, io) = run_join(algo, 900, 6, 70, threads);
            assert_eq!(
                rows,
                rows1,
                "{}: rows differ at DoP {threads}",
                algo.label()
            );
            assert_eq!(
                io,
                io1,
                "{}: traffic differs at DoP {threads}",
                algo.label()
            );
        }
    }
}

#[test]
fn morsel_spanning_grace_join_is_dop_invariant() {
    // Inputs larger than one morsel exercise the parallel phase-1 grid.
    let t = PARTITION_MORSEL_RECORDS as u64 + 3000;
    let (rows1, io1) = run_join(JoinAlgorithm::GJ, t, 2, 1600, 1);
    for threads in DOPS {
        let (rows, io) = run_join(JoinAlgorithm::GJ, t, 2, 1600, threads);
        assert_eq!(rows, rows1, "rows differ at DoP {threads}");
        assert_eq!(io, io1, "traffic differs at DoP {threads}");
    }
}

fn run_sort(algo: SortAlgorithm, n: u64, m_records: usize, threads: usize) -> (Vec<u64>, IoStats) {
    let dev = PmDevice::paper_default();
    let input = PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "S",
        sort_input(n, KeyOrder::Random, 17),
    );
    let pool = BufferPool::new(m_records * 80);
    let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
    let before = dev.snapshot();
    let out = algo.run(&input, &ctx, "sorted").expect("valid");
    let stats = dev.snapshot().since(&before);
    let keys = out
        .to_vec_uncounted()
        .iter()
        .map(wisconsin::Record::key)
        .collect();
    (keys, stats)
}

#[test]
fn every_sort_algorithm_is_dop_invariant() {
    let algos = [
        SortAlgorithm::ExMS,
        SortAlgorithm::SegS { x: 0.5 },
        SortAlgorithm::HybS { x: 0.5 },
        SortAlgorithm::LaS,
        SortAlgorithm::SelS,
    ];
    for algo in algos {
        // M = 64 records forces a small merge fan-in, so ExMS needs
        // several (parallelizable) intermediate merge passes.
        let (keys1, io1) = run_sort(algo, 6000, 64, 1);
        assert!(keys1.windows(2).all(|w| w[0] <= w[1]), "{}", algo.label());
        for threads in DOPS {
            let (keys, io) = run_sort(algo, 6000, 64, threads);
            assert_eq!(
                keys,
                keys1,
                "{}: keys differ at DoP {threads}",
                algo.label()
            );
            assert_eq!(
                io,
                io1,
                "{}: traffic differs at DoP {threads}",
                algo.label()
            );
        }
    }
}

#[test]
fn morsel_spanning_iterative_joins_are_dop_invariant() {
    // Inputs spanning several execution morsels exercise the fanned-out
    // build and probe scans of the standard and lazy hash joins and the
    // multi-block fan-out of NLJ.
    let t = PARTITION_MORSEL_RECORDS as u64 + 4000;
    for algo in [JoinAlgorithm::HJ, JoinAlgorithm::LaJ, JoinAlgorithm::NLJ] {
        let (rows1, io1) = run_join(algo, t, 2, 3000, 1);
        for threads in [2, 4] {
            let (rows, io) = run_join(algo, t, 2, 3000, threads);
            assert_eq!(
                rows,
                rows1,
                "{}: rows differ at DoP {threads}",
                algo.label()
            );
            assert_eq!(
                io,
                io1,
                "{}: traffic differs at DoP {threads}",
                algo.label()
            );
        }
    }
}

#[test]
fn skewed_all_one_key_inputs_are_dop_invariant() {
    // Every row carries the same key: the worst case for range
    // partitioning (one degenerate segment) and for hash partitioning
    // (one partition holds everything). Output must still be exact and
    // identical at every DoP.
    let run = |algo: JoinAlgorithm, threads: usize| {
        let dev = PmDevice::paper_default();
        let one_key = |n: u64| (0..n).map(|i| WisconsinRecord::from_key(7).with_payload(i));
        let left =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", one_key(90));
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", one_key(110));
        let pool = BufferPool::new(100 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
        let before = dev.snapshot();
        let out = algo.run(&left, &right, &ctx, "out").expect("applicable");
        let rows: Vec<(u64, u64)> = out
            .to_vec_uncounted()
            .iter()
            .map(|p| (p.left.payload(), p.right.payload()))
            .collect();
        (rows, dev.snapshot().since(&before))
    };
    for algo in [
        JoinAlgorithm::HJ,
        JoinAlgorithm::LaJ,
        JoinAlgorithm::NLJ,
        JoinAlgorithm::SMJ { x: 0.5 },
    ] {
        let (rows1, io1) = run(algo, 1);
        assert_eq!(rows1.len(), 90 * 110, "{}", algo.label());
        for threads in [2, 4] {
            let (rows, io) = run(algo, threads);
            assert_eq!(
                rows,
                rows1,
                "{}: rows differ at DoP {threads}",
                algo.label()
            );
            assert_eq!(
                io,
                io1,
                "{}: traffic differs at DoP {threads}",
                algo.label()
            );
        }
    }
}

#[test]
fn empty_inputs_are_dop_invariant_for_every_parallel_join() {
    for algo in [
        JoinAlgorithm::HJ,
        JoinAlgorithm::LaJ,
        JoinAlgorithm::NLJ,
        JoinAlgorithm::SMJ { x: 0.5 },
    ] {
        for threads in [1, 4] {
            let dev = PmDevice::paper_default();
            let empty: PCollection<WisconsinRecord> =
                PCollection::new(&dev, LayerKind::BlockedMemory, "E");
            let some = PCollection::from_records_uncounted(
                &dev,
                LayerKind::BlockedMemory,
                "S",
                (0..50).map(WisconsinRecord::from_key),
            );
            let pool = BufferPool::new(60 * 80);
            let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
            assert!(
                algo.run(&empty, &some, &ctx, "o1")
                    .expect("runs")
                    .is_empty(),
                "{} empty left at DoP {threads}",
                algo.label()
            );
            assert!(
                algo.run(&some, &empty, &ctx, "o2")
                    .expect("runs")
                    .is_empty(),
                "{} empty right at DoP {threads}",
                algo.label()
            );
        }
    }
}

#[test]
fn parallel_final_merge_is_dop_invariant_across_input_shapes() {
    use write_limited::sort::external_merge_sort_profiled;

    // Random keys (many runs, several key segments), all-one-key skew
    // (range partitioning degenerates to one segment), and sorted input
    // (a single run — the merge is skipped entirely).
    let shapes: [(&str, KeyOrder); 3] = [
        ("random", KeyOrder::Random),
        ("one-key", KeyOrder::FewDistinct { distinct: 1 }),
        ("sorted", KeyOrder::Sorted),
    ];
    for (label, order) in shapes {
        let run = |threads: usize| {
            let dev = PmDevice::paper_default();
            let input = PCollection::from_records_uncounted(
                &dev,
                LayerKind::BlockedMemory,
                "S",
                sort_input(30_000, order, 9),
            );
            let pool = BufferPool::new(600 * 80);
            let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
            let before = dev.snapshot();
            let (out, profile) = external_merge_sort_profiled(&input, &ctx, "sorted");
            let stats = dev.snapshot().since(&before);
            let rows: Vec<(u64, u64)> = out
                .to_vec_uncounted()
                .iter()
                .map(|r| (r.key(), r.payload()))
                .collect();
            (rows, stats, profile.merge_passes.len())
        };
        let (rows1, io1, passes1) = run(1);
        assert!(rows1.windows(2).all(|w| w[0] <= w[1]), "{label}: sorted");
        assert_eq!(rows1.len(), 30_000, "{label}");
        for threads in [2, 4] {
            let (rows, io, passes) = run(threads);
            assert_eq!(rows, rows1, "{label}: rows differ at DoP {threads}");
            assert_eq!(io, io1, "{label}: traffic differs at DoP {threads}");
            assert_eq!(passes, passes1, "{label}: pass structure differs");
        }
    }
}

#[test]
fn empty_sort_input_is_dop_invariant() {
    for threads in [1, 4] {
        let dev = PmDevice::paper_default();
        let input: PCollection<WisconsinRecord> =
            PCollection::new(&dev, LayerKind::BlockedMemory, "S");
        let pool = BufferPool::new(100 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
        let out = write_limited::sort::external_merge_sort(&input, &ctx, "sorted");
        assert!(out.is_empty(), "DoP {threads}");
    }
}

#[test]
fn parallel_sort_aggregation_is_dop_invariant() {
    use write_limited::agg::sort_based_aggregate;

    // x = 1 over a morsel-spanning input drives the range-partitioned
    // merge-aggregate; the few-distinct shape makes wide groups, the
    // single-key shape the degenerate one-segment case.
    for distinct in [1u64, 37, 5_000] {
        let run = |threads: usize| {
            let dev = PmDevice::paper_default();
            let input = PCollection::from_records_uncounted(
                &dev,
                LayerKind::BlockedMemory,
                "A",
                sort_input(20_000, KeyOrder::FewDistinct { distinct }, 5),
            );
            let pool = BufferPool::new(400 * 80);
            let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
            let before = dev.snapshot();
            let out =
                sort_based_aggregate(&input, 1.0, |r| r.payload(), &ctx, "agg").expect("valid x");
            let groups: Vec<(u64, u64, u64)> = out
                .to_vec_uncounted()
                .iter()
                .map(|g| (g.key, g.count, g.sum))
                .collect();
            (groups, dev.snapshot().since(&before))
        };
        let (groups1, io1) = run(1);
        // Keys are drawn randomly from the domain: every key shows up
        // for small domains, a large domain may miss a few.
        assert!(groups1.len() as u64 <= distinct, "one row per group");
        if distinct <= 37 {
            assert_eq!(groups1.len() as u64, distinct, "all keys present");
        }
        assert!(groups1.windows(2).all(|w| w[0].0 < w[1].0), "key order");
        assert_eq!(
            groups1.iter().map(|g| g.1).sum::<u64>(),
            20_000,
            "counts cover the input"
        );
        for threads in [2, 4] {
            let (groups, io) = run(threads);
            assert_eq!(
                groups, groups1,
                "distinct={distinct}: rows differ at DoP {threads}"
            );
            assert_eq!(
                io, io1,
                "distinct={distinct}: traffic differs at DoP {threads}"
            );
        }
    }
}

#[test]
fn deferred_pipeline_join_is_dop_invariant() {
    let run = |threads: usize| {
        let dev = PmDevice::paper_default();
        let w = join_input(600, 4, 23);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(40 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
        let mut rt = OpCtx::new(dev.lambda());
        // Selective filter: materializes after the first pass, so the
        // remaining passes run through the parallel tail.
        let mut filter = DeferredFilter::new(&left, |r| r.key() % 20 == 0, 0.05, &mut rt);
        let before = dev.snapshot();
        let out =
            filtered_iterate_join(&mut filter, &right, &ctx, &mut rt, "out").expect("applicable");
        let stats = dev.snapshot().since(&before);
        assert!(filter.is_materialized());
        let rows: Vec<(u64, u64)> = out
            .to_vec_uncounted()
            .iter()
            .map(|p| (p.left.key(), p.right.payload()))
            .collect();
        (rows, stats)
    };
    let (rows1, io1) = run(1);
    for threads in DOPS {
        let (rows, io) = run(threads);
        assert_eq!(rows, rows1, "rows differ at DoP {threads}");
        assert_eq!(io, io1, "traffic differs at DoP {threads}");
    }
}

#[test]
fn planned_query_execution_is_dop_invariant() {
    use planner::{execute, Catalog, LogicalPlan, Planner, Predicate};

    let dev = PmDevice::paper_default();
    let w = join_input(800, 4, 5);
    let left = std::sync::Arc::new(PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "T",
        w.left,
    ));
    let right = std::sync::Arc::new(PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "V",
        w.right,
    ));
    let mut cat = Catalog::new();
    cat.add_table("T", left, 800);
    cat.add_table("V", right, 800);

    let logical = LogicalPlan::scan("T")
        .filter(Predicate::KeyBelow(400))
        .join(LogicalPlan::scan("V"));
    let pool = BufferPool::new(60 * 80);
    let planned = Planner::for_device(&dev, &pool, LayerKind::BlockedMemory)
        .plan(&logical, &cat)
        .expect("plans");

    // Same physical plan, executed at different degrees: identical rows
    // and identical counted traffic.
    let mut runs = Vec::new();
    for threads in [1, 4] {
        let mut planned = planned.clone();
        planned.threads = threads;
        dev.reset_metrics();
        let executed =
            execute(&planned, &cat, &dev, LayerKind::BlockedMemory, &pool).expect("executes");
        runs.push((executed.output.canonical(), executed.stats));
    }
    assert_eq!(runs[0].0, runs[1].0, "rows differ across DoP");
    assert_eq!(runs[0].1, runs[1].1, "traffic differs across DoP");
}

#[test]
fn counters_are_bit_identical_across_dops_with_profiling_on_and_off() {
    // The sharded hot-path accounting must publish exactly the serial
    // totals no matter how tasks were divided across workers, and
    // per-collection attribution (profiling) must neither perturb the
    // counters nor itself vary by DoP.
    let run = |algo: JoinAlgorithm, profiled: bool, threads: usize| {
        let dev = PmDevice::paper_default();
        if profiled {
            dev.metrics().enable_breakdown();
        }
        let w = join_input(900, 6, 41);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(70 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
        let before = dev.snapshot();
        algo.run(&left, &right, &ctx, "out").expect("applicable");
        // breakdown() is deterministically ordered (writes desc, name),
        // so it is directly comparable across runs.
        (dev.snapshot().since(&before), dev.metrics().breakdown())
    };
    for profiled in [false, true] {
        for algo in [JoinAlgorithm::GJ, JoinAlgorithm::HJ] {
            let (io1, attr1) = run(algo, profiled, 1);
            assert_eq!(attr1.is_empty(), !profiled, "{}", algo.label());
            for threads in [4, 8] {
                let (io, attr) = run(algo, profiled, threads);
                assert_eq!(
                    io,
                    io1,
                    "{} (profiled={profiled}): traffic differs at DoP {threads}",
                    algo.label()
                );
                assert_eq!(
                    attr,
                    attr1,
                    "{} (profiled={profiled}): attribution differs at DoP {threads}",
                    algo.label()
                );
            }
        }
    }
}

#[test]
fn skewed_one_key_counters_are_bit_identical_across_dops_while_profiling() {
    // All-one-key skew funnels every row through one partition, so one
    // worker's shard carries almost all of the traffic while its
    // siblings stay near-idle — the stress case for merge-at-barrier
    // bookkeeping. Attribution is on throughout.
    let run = |algo: JoinAlgorithm, threads: usize| {
        let dev = PmDevice::paper_default();
        dev.metrics().enable_breakdown();
        let one_key = |n: u64| (0..n).map(|i| WisconsinRecord::from_key(7).with_payload(i));
        let left =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", one_key(90));
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", one_key(110));
        let pool = BufferPool::new(100 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
        let before = dev.snapshot();
        algo.run(&left, &right, &ctx, "out").expect("applicable");
        (dev.snapshot().since(&before), dev.metrics().breakdown())
    };
    for algo in [JoinAlgorithm::HJ, JoinAlgorithm::SMJ { x: 0.5 }] {
        let (io1, attr1) = run(algo, 1);
        assert!(!attr1.is_empty(), "{}", algo.label());
        for threads in [4, 8] {
            let (io, attr) = run(algo, threads);
            assert_eq!(
                io,
                io1,
                "{}: traffic differs at DoP {threads}",
                algo.label()
            );
            assert_eq!(
                attr,
                attr1,
                "{}: attribution differs at DoP {threads}",
                algo.label()
            );
        }
    }
}

#[test]
fn mid_task_panic_publishes_partial_accounting_exactly_once() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use write_limited::parallel::for_each_ordered;

    let dev = PmDevice::paper_default();
    let coll = PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "P",
        (0..64).map(WisconsinRecord::from_key),
    );
    let scan = || coll.reader().map(|r| r.key()).sum::<u64>();

    // The cost of one full counted scan, measured serially.
    let before = dev.snapshot();
    scan();
    let one = dev.snapshot().since(&before);
    assert!(one.cl_reads > 0, "the scan is counted");

    // Two tasks across two workers; the second panics after charging a
    // full scan. Workers pull task indices unconditionally, so both
    // tasks always execute and the surviving total is deterministic:
    // exactly two scans — the panicking task's partial ledger included
    // (published by the worker's unwind), never lost or double-merged.
    let before = dev.snapshot();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        for_each_ordered(
            2,
            2,
            |i| {
                scan();
                if i == 1 {
                    panic!("injected mid-task failure");
                }
                i
            },
            |_, _| {},
        );
    }));
    assert!(caught.is_err(), "the worker panic propagates at the join");
    let after = dev.snapshot().since(&before);
    assert_eq!(
        after,
        one.plus(&one),
        "partial ledger published exactly once"
    );
    // Re-reading the bank must not merge anything a second time.
    assert_eq!(dev.snapshot().since(&before), after);
}

#[test]
fn grace_profile_ledgers_reconcile_with_device_totals() {
    use write_limited::join::grace_join_profiled;

    let run = |threads: usize| {
        let dev = PmDevice::paper_default();
        let w = join_input(2000, 5, 3);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(300 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
        let before = dev.snapshot();
        let (_, profile) = grace_join_profiled(&left, &right, &ctx, "out").expect("applicable");
        (profile, dev.snapshot().since(&before))
    };
    let (p1, total1) = run(1);
    for threads in [1, 4] {
        let (profile, total) = run(threads);
        assert_eq!(total, total1, "device totals differ at DoP {threads}");
        assert_eq!(
            profile.per_partition, p1.per_partition,
            "per-partition ledgers differ at DoP {threads}"
        );
        // The phase ledgers cover the whole run: morsel costs sum to the
        // partitioning phase, and partition costs account for all
        // remaining traffic (build/probe reads + output writes).
        let morsels: IoStats = profile
            .per_morsel_left
            .iter()
            .chain(&profile.per_morsel_right)
            .fold(IoStats::default(), |acc, s| acc.plus(s));
        assert_eq!(morsels, profile.partition_phase);
        let parts: IoStats = profile
            .per_partition
            .iter()
            .fold(IoStats::default(), |acc, s| acc.plus(s));
        assert_eq!(parts, total.since(&profile.partition_phase));
    }
}
