//! Mid-plan re-planning integration tests: drift-free adaptive runs are
//! bit-identical to static ones (rows *and* counters, at DoP 1 and 4),
//! and when an observed cardinality drifts past the threshold the
//! remaining join subtree is re-enumerated without losing a row.

use planner::{execute_naive, execute_stream, Catalog, LogicalPlan, PlannedQuery, Planner};
use pmem_sim::{BufferPool, LayerKind, PCollection, Pm, PmDevice};
use std::sync::Arc;
use wisconsin::WisconsinRecord;

fn table_from_keys(dev: &Pm, name: &str, keys: &[u64]) -> Arc<PCollection<WisconsinRecord>> {
    Arc::new(PCollection::from_records_uncounted(
        dev,
        LayerKind::BlockedMemory,
        name,
        keys.iter()
            .enumerate()
            .map(|(i, &k)| WisconsinRecord::from_key(k).with_payload(i as u64)),
    ))
}

/// Uniform three-way chain with accurate catalog metadata: the estimate
/// holds, no drift fires, and the adaptive run must be bit-identical to
/// the static one — same rows, same counters — at DoP 1 and DoP 4.
#[test]
fn no_drift_adaptive_runs_match_static_runs_exactly() {
    for threads in [1usize, 4] {
        let mut outputs = Vec::new();
        for adapt in [true, false] {
            let dev = PmDevice::paper_default();
            let mut cat = Catalog::new();
            let keys: Vec<u64> = (0..600).collect();
            cat.add_table("a", table_from_keys(&dev, "a", &keys), 600);
            cat.add_table("b", table_from_keys(&dev, "b", &keys), 600);
            cat.add_table("c", table_from_keys(&dev, "c", &keys), 600);
            let logical = LogicalPlan::scan("a")
                .join(LogicalPlan::scan("b"))
                .join(LogicalPlan::scan("c"));
            let pool = BufferPool::new(400 * 80);
            let planned = Planner::for_device(&dev, &pool, LayerKind::BlockedMemory)
                .with_threads(threads)
                .with_adaptivity(adapt)
                .plan(&logical, &cat)
                .expect("plans");
            assert_eq!(planned.adapt, adapt);
            let run = execute_stream(&planned, &cat, &dev, LayerKind::BlockedMemory, &pool)
                .expect("runs");
            assert!(
                run.adapted.is_none(),
                "accurate estimates must not trigger re-planning"
            );
            outputs.push((run.result.all_rows().canonical_wide(), run.stats));
        }
        let (rows_on, io_on) = &outputs[0];
        let (rows_off, io_off) = &outputs[1];
        assert_eq!(rows_on, rows_off, "rows diverged at DoP {threads}");
        assert_eq!(io_on, io_off, "counters diverged at DoP {threads}");
    }
}

/// A catalog whose uniform metadata wildly underestimates the first
/// join (the key domain is registered far wider than the keys actually
/// used): adaptation must observe the drift, re-enumerate the remaining
/// subtree, and still produce exactly the oracle's rows at DoP 1 and 4.
#[test]
fn drift_triggers_replanning_and_keeps_the_oracle_rows() {
    let build_catalog = |dev: &Pm| {
        let mut cat = Catalog::new();
        // Both `s1` and `s2` repeat 20 keys 20× but claim 400-wide key
        // domains, so every pairwise uniform estimate is at least 10×
        // under the true cardinality: whichever join runs first drifts.
        let s1: Vec<u64> = (0..400).map(|i| i % 20).collect();
        let s2: Vec<u64> = (0..400).map(|i| i % 20).collect();
        let t: Vec<u64> = (0..40).collect();
        cat.add_table("s1", table_from_keys(dev, "s1", &s1), 400);
        cat.add_table("s2", table_from_keys(dev, "s2", &s2), 400);
        cat.add_table("t", table_from_keys(dev, "t", &t), 40);
        cat
    };
    let logical = LogicalPlan::scan("s1")
        .join(LogicalPlan::scan("s2"))
        .join(LogicalPlan::scan("t"));

    let mut canonical = Vec::new();
    for threads in [1usize, 4] {
        let dev = PmDevice::paper_default();
        let cat = build_catalog(&dev);
        let pool = BufferPool::new(300 * 80);
        let planned = Planner::for_device(&dev, &pool, LayerKind::BlockedMemory)
            .with_threads(threads)
            .plan(&logical, &cat)
            .expect("plans");
        let run =
            execute_stream(&planned, &cat, &dev, LayerKind::BlockedMemory, &pool).expect("runs");
        let adapted = run.adapted.as_ref().expect("drift must fire");
        assert!(
            adapted.observed_rows as f64 > 2.0 * adapted.estimated_rows,
            "observed {} vs estimated {}",
            adapted.observed_rows,
            adapted.estimated_rows
        );
        assert!(
            adapted.plan.describe().contains("(re-planned)"),
            "executed plan must carry the re-planned marker:\n{}",
            adapted.plan.describe()
        );
        assert!(
            !adapted.choices.is_empty(),
            "re-enumeration must record its candidate evidence"
        );
        // The reporting plan splices the executed intermediate back in:
        // no pseudo-table scan may remain visible.
        assert!(
            !adapted.plan.describe().contains("~mid"),
            "pseudo-table leaked into the report:\n{}",
            adapted.plan.describe()
        );
        let reference = execute_naive(&logical, &cat).expect("naive evaluates");
        let rows = run.result.all_rows();
        assert_eq!(rows.len(), 20 * 20 * 20, "20 keys × 20 × 20 copies");
        assert_eq!(rows.canonical_wide(), reference.canonical_wide());
        canonical.push(rows.canonical_wide());
    }
    assert_eq!(canonical[0], canonical[1], "rows changed with DoP");
}

/// With adaptivity off the same drifting workload runs the static plan:
/// no re-planning, still the oracle's rows.
#[test]
fn static_plans_survive_drift_without_replanning() {
    let dev = PmDevice::paper_default();
    let mut cat = Catalog::new();
    let s1: Vec<u64> = (0..300).map(|i| i % 15).collect();
    let s2: Vec<u64> = (0..300).map(|i| i % 15).collect();
    let t: Vec<u64> = (0..30).collect();
    cat.add_table("s1", table_from_keys(&dev, "s1", &s1), 300);
    cat.add_table("s2", table_from_keys(&dev, "s2", &s2), 300);
    cat.add_table("t", table_from_keys(&dev, "t", &t), 30);
    let logical = LogicalPlan::scan("s1")
        .join(LogicalPlan::scan("s2"))
        .join(LogicalPlan::scan("t"));
    let pool = BufferPool::new(300 * 80);
    let planned = Planner::for_device(&dev, &pool, LayerKind::BlockedMemory)
        .with_adaptivity(false)
        .plan(&logical, &cat)
        .expect("plans");
    let run = execute_stream(&planned, &cat, &dev, LayerKind::BlockedMemory, &pool).expect("runs");
    assert!(run.adapted.is_none());
    let reference = execute_naive(&logical, &cat).expect("naive evaluates");
    assert_eq!(
        run.result.all_rows().canonical_wide(),
        reference.canonical_wide()
    );
}

/// Re-planning must survive being re-executed from a cloned plan (the
/// `PlannedQuery` is immutable evidence; adaptation happens per run).
#[test]
fn replanning_is_per_run_and_leaves_the_planned_query_untouched() {
    let dev = PmDevice::paper_default();
    let mut cat = Catalog::new();
    let s1: Vec<u64> = (0..240).map(|i| i % 12).collect();
    let s2: Vec<u64> = (0..240).map(|i| i % 12).collect();
    let t: Vec<u64> = (0..24).collect();
    cat.add_table("s1", table_from_keys(&dev, "s1", &s1), 240);
    cat.add_table("s2", table_from_keys(&dev, "s2", &s2), 240);
    cat.add_table("t", table_from_keys(&dev, "t", &t), 24);
    let logical = LogicalPlan::scan("s1")
        .join(LogicalPlan::scan("s2"))
        .join(LogicalPlan::scan("t"));
    let pool = BufferPool::new(300 * 80);
    let planned = Planner::for_device(&dev, &pool, LayerKind::BlockedMemory)
        .plan(&logical, &cat)
        .expect("plans");
    let before = format!("{:?}", planned.plan.describe());
    let run1 =
        execute_stream(&planned, &cat, &dev, LayerKind::BlockedMemory, &pool).expect("first run");
    let replanned = PlannedQuery {
        threads: planned.threads,
        ..planned.clone()
    };
    let run2 = execute_stream(&replanned, &cat, &dev, LayerKind::BlockedMemory, &pool)
        .expect("second run");
    assert_eq!(before, format!("{:?}", planned.plan.describe()));
    assert_eq!(
        run1.result.all_rows().canonical_wide(),
        run2.result.all_rows().canonical_wide()
    );
    assert_eq!(run1.stats, run2.stats, "adaptation must be deterministic");
    assert_eq!(run1.adapted.is_some(), run2.adapted.is_some());
}

/// The plan's chain root is the interception point even under wrapper
/// nodes: drift under a sort still re-plans and the sorted output stays
/// correct.
#[test]
fn adaptation_fires_under_wrapper_nodes() {
    let dev = PmDevice::paper_default();
    let mut cat = Catalog::new();
    let s1: Vec<u64> = (0..200).map(|i| i % 10).collect();
    let s2: Vec<u64> = (0..200).map(|i| i % 10).collect();
    let t: Vec<u64> = (0..20).collect();
    cat.add_table("s1", table_from_keys(&dev, "s1", &s1), 200);
    cat.add_table("s2", table_from_keys(&dev, "s2", &s2), 200);
    cat.add_table("t", table_from_keys(&dev, "t", &t), 20);
    let logical = LogicalPlan::scan("s1")
        .join(LogicalPlan::scan("s2"))
        .join(LogicalPlan::scan("t"))
        .sort();
    let pool = BufferPool::new(300 * 80);
    let planned = Planner::for_device(&dev, &pool, LayerKind::BlockedMemory)
        .plan(&logical, &cat)
        .expect("plans");
    let run = execute_stream(&planned, &cat, &dev, LayerKind::BlockedMemory, &pool).expect("runs");
    let adapted = run.adapted.as_ref().expect("drift fires under the sort");
    // The effective plan keeps the wrapper above the re-planned subtree.
    assert!(adapted.plan.describe().starts_with("sort via"));
    let rows = run.result.all_rows();
    let keys = rows.keys();
    assert!(keys.windows(2).all(|w| w[0] <= w[1]), "sorted output");
    let reference = execute_naive(&logical, &cat).expect("naive evaluates");
    assert_eq!(rows.canonical_wide(), reference.canonical_wide());
}
