//! Integration + property tests for the §6 extensions: aggregation,
//! the B⁺-tree index, and plan-level deferral.

use pmem_sim::{BufferPool, LayerKind, PCollection, PmDevice};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use wisconsin::{Record as _, WisconsinRecord};
use wl_index::{BPlusTree, LeafPolicy};
use wl_runtime::OpCtx;
use write_limited::agg::{
    hash_aggregate, segmented_hash_aggregate, sort_based_aggregate, GroupAgg,
};
use write_limited::join::JoinContext;
use write_limited::pipeline::{filtered_iterate_join, DeferredFilter};
use write_limited::sort::SortContext;

fn reference_agg(keys: &[(u64, u64)]) -> BTreeMap<u64, GroupAgg> {
    let mut map = BTreeMap::new();
    for &(k, v) in keys {
        map.entry(k)
            .and_modify(|g: &mut GroupAgg| g.fold(v))
            .or_insert_with(|| GroupAgg::seed(k, v));
    }
    map
}

/// Every aggregation strategy computes identical group state
/// (deterministic seeded sampling; see `props.rs` for the rationale).
#[test]
fn aggregation_strategies_agree() {
    let mut rng = StdRng::seed_from_u64(0xA66);
    for case in 0..32 {
        let n = rng.gen_range(1usize..300);
        let pairs: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.gen_range(0u64..60), rng.gen_range(0u64..1000)))
            .collect();
        let x = rng.gen::<f64>();
        let materialized = rng.gen_range(0usize..4);

        let expect = reference_agg(&pairs);
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            pairs
                .iter()
                .map(|&(k, v)| WisconsinRecord::from_key(k).with_payload(v)),
        );
        let pool = BufferPool::new(64 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);

        let sort_out =
            sort_based_aggregate(&input, x, |r| r.payload(), &ctx, "s").expect("valid x");
        let got: BTreeMap<u64, GroupAgg> = sort_out
            .to_vec_uncounted()
            .into_iter()
            .map(|g| (g.key, g))
            .collect();
        assert_eq!(got, expect, "case {case}: sort-based");

        let seg_out = segmented_hash_aggregate(&input, 4, materialized, |r| r.payload(), &ctx, "g")
            .expect("valid");
        let got: BTreeMap<u64, GroupAgg> = seg_out
            .to_vec_uncounted()
            .into_iter()
            .map(|g| (g.key, g))
            .collect();
        assert_eq!(got, expect, "case {case}: segmented hash");

        if let Ok(hash_out) = hash_aggregate(&input, |r| r.payload(), &ctx, "h") {
            let got: BTreeMap<u64, GroupAgg> = hash_out
                .to_vec_uncounted()
                .into_iter()
                .map(|g| (g.key, g))
                .collect();
            assert_eq!(got, expect, "case {case}: hash");
        }
    }
}

/// Both leaf policies behave exactly like a BTreeMap under random
/// insert/overwrite workloads, including range scans.
#[test]
fn btree_matches_model() {
    let mut rng = StdRng::seed_from_u64(0xBEE);
    for case in 0..32 {
        let n_ops = rng.gen_range(1usize..400);
        let ops: Vec<(u64, u64)> = (0..n_ops)
            .map(|_| (rng.gen_range(0u64..500), rng.gen::<u64>()))
            .collect();
        let policy = [LeafPolicy::Sorted, LeafPolicy::Append][case % 2];
        let lo = rng.gen_range(0u64..250);
        let span = rng.gen_range(0u64..250);

        let dev = PmDevice::paper_default();
        let mut tree = BPlusTree::new(&dev, 256, policy);
        let mut model = BTreeMap::new();
        for &(k, v) in &ops {
            assert_eq!(
                tree.insert(k, v),
                model.insert(k, v),
                "case {case}: insert {k}"
            );
        }
        assert_eq!(tree.len(), model.len(), "case {case}");
        for k in 0..500 {
            assert_eq!(tree.get(k), model.get(&k).copied(), "case {case}: get {k}");
        }
        let hi = lo + span;
        let got = tree.range(lo, hi);
        let expect: Vec<(u64, u64)> = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, expect, "case {case}: range {lo}..={hi}");
    }
}

#[test]
fn append_leaves_save_writes_across_page_sizes() {
    for page_size in [256usize, 512, 1024, 4096] {
        let run = |policy| {
            let dev = PmDevice::paper_default();
            let mut t = BPlusTree::new(&dev, page_size, policy);
            let perm = wisconsin::Permutation::new(3000, 5);
            let before = dev.snapshot();
            for i in 0..3000 {
                t.insert(perm.apply(i), i);
            }
            dev.snapshot().since(&before).cl_writes
        };
        let sorted = run(LeafPolicy::Sorted);
        let append = run(LeafPolicy::Append);
        assert!(
            append < sorted,
            "page {page_size}: append {append} !< sorted {sorted}"
        );
    }
}

#[test]
fn pipeline_filter_join_respects_selectivity() {
    let dev = PmDevice::paper_default();
    let w = wisconsin::join_input(500, 4, 8);
    let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
    let right = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
    let pool = BufferPool::new(50 * 80);
    let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
    let mut rt = OpCtx::new(dev.lambda());
    let mut filter = DeferredFilter::new(&left, |r| r.key() < 100, 0.2, &mut rt);
    let out = filtered_iterate_join(&mut filter, &right, &ctx, &mut rt, "out").expect("applicable");
    assert_eq!(out.len(), 400); // 100 surviving keys × fanout 4
    assert!(out.to_vec_uncounted().iter().all(|p| p.left.key() < 100));
}

#[test]
fn group_agg_is_a_valid_record_for_downstream_operators() {
    // Aggregation output can itself be sorted — operators compose.
    let dev = PmDevice::paper_default();
    let input = PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "T",
        (0..1000u64).map(|i| WisconsinRecord::from_key(i % 37).with_payload(i)),
    );
    let pool = BufferPool::new(64 * 80);
    let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
    let groups = hash_aggregate(&input, |r| r.payload(), &ctx, "g").expect("fits");
    let agg_ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
    let sorted = write_limited::sort::external_merge_sort(&groups, &agg_ctx, "sorted-groups");
    assert_eq!(sorted.len(), 37);
    assert!(write_limited::sort::is_sorted_by_key(&sorted));
}
