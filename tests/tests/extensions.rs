//! Integration + property tests for the §6 extensions: aggregation,
//! the B⁺-tree index, and plan-level deferral.

use pmem_sim::{BufferPool, LayerKind, PCollection, PmDevice};
use proptest::prelude::*;
use std::collections::BTreeMap;
use wisconsin::{Record as _, WisconsinRecord};
use wl_index::{BPlusTree, LeafPolicy};
use write_limited::agg::{hash_aggregate, segmented_hash_aggregate, sort_based_aggregate, GroupAgg};
use write_limited::join::JoinContext;
use write_limited::pipeline::{filtered_iterate_join, DeferredFilter};
use write_limited::sort::SortContext;
use wl_runtime::OpCtx;

fn reference_agg(keys: &[(u64, u64)]) -> BTreeMap<u64, GroupAgg> {
    let mut map = BTreeMap::new();
    for &(k, v) in keys {
        map.entry(k)
            .and_modify(|g: &mut GroupAgg| g.fold(v))
            .or_insert_with(|| GroupAgg::seed(k, v));
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every aggregation strategy computes identical group state.
    #[test]
    fn aggregation_strategies_agree(
        pairs in prop::collection::vec((0u64..60, 0u64..1000), 1..300),
        x in 0.0f64..=1.0,
        materialized in 0usize..4,
    ) {
        let expect = reference_agg(&pairs);
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            pairs.iter().map(|&(k, v)| WisconsinRecord::from_key(k).with_payload(v)),
        );
        let pool = BufferPool::new(64 * 80);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);

        let sort_out = sort_based_aggregate(&input, x, |r| r.payload(), &ctx, "s")
            .expect("valid x");
        let got: BTreeMap<u64, GroupAgg> =
            sort_out.to_vec_uncounted().into_iter().map(|g| (g.key, g)).collect();
        prop_assert_eq!(&got, &expect);

        let seg_out = segmented_hash_aggregate(&input, 4, materialized, |r| r.payload(), &ctx, "g")
            .expect("valid");
        let got: BTreeMap<u64, GroupAgg> =
            seg_out.to_vec_uncounted().into_iter().map(|g| (g.key, g)).collect();
        prop_assert_eq!(&got, &expect);

        if let Ok(hash_out) = hash_aggregate(&input, |r| r.payload(), &ctx, "h") {
            let got: BTreeMap<u64, GroupAgg> =
                hash_out.to_vec_uncounted().into_iter().map(|g| (g.key, g)).collect();
            prop_assert_eq!(&got, &expect);
        }
    }

    /// Both leaf policies behave exactly like a BTreeMap under random
    /// insert/overwrite workloads, including range scans.
    #[test]
    fn btree_matches_model(
        ops in prop::collection::vec((0u64..500, any::<u64>()), 1..400),
        policy_pick in 0usize..2,
        lo in 0u64..250,
        span in 0u64..250,
    ) {
        let policy = [LeafPolicy::Sorted, LeafPolicy::Append][policy_pick];
        let dev = PmDevice::paper_default();
        let mut tree = BPlusTree::new(&dev, 256, policy);
        let mut model = BTreeMap::new();
        for &(k, v) in &ops {
            prop_assert_eq!(tree.insert(k, v), model.insert(k, v), "insert {}", k);
        }
        prop_assert_eq!(tree.len(), model.len());
        for k in 0..500 {
            prop_assert_eq!(tree.get(k), model.get(&k).copied(), "get {}", k);
        }
        let hi = lo + span;
        let got = tree.range(lo, hi);
        let expect: Vec<(u64, u64)> = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, expect);
    }
}

#[test]
fn append_leaves_save_writes_across_page_sizes() {
    for page_size in [256usize, 512, 1024, 4096] {
        let run = |policy| {
            let dev = PmDevice::paper_default();
            let mut t = BPlusTree::new(&dev, page_size, policy);
            let perm = wisconsin::Permutation::new(3000, 5);
            let before = dev.snapshot();
            for i in 0..3000 {
                t.insert(perm.apply(i), i);
            }
            dev.snapshot().since(&before).cl_writes
        };
        let sorted = run(LeafPolicy::Sorted);
        let append = run(LeafPolicy::Append);
        assert!(
            append < sorted,
            "page {page_size}: append {append} !< sorted {sorted}"
        );
    }
}

#[test]
fn pipeline_filter_join_respects_selectivity() {
    let dev = PmDevice::paper_default();
    let w = wisconsin::join_input(500, 4, 8);
    let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
    let right = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
    let pool = BufferPool::new(50 * 80);
    let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
    let mut rt = OpCtx::new(dev.lambda());
    let mut filter = DeferredFilter::new(&left, |r| r.key() < 100, 0.2, &mut rt);
    let out =
        filtered_iterate_join(&mut filter, &right, &ctx, &mut rt, "out").expect("applicable");
    assert_eq!(out.len(), 400); // 100 surviving keys × fanout 4
    assert!(out.to_vec_uncounted().iter().all(|p| p.left.key() < 100));
}

#[test]
fn group_agg_is_a_valid_record_for_downstream_operators() {
    // Aggregation output can itself be sorted — operators compose.
    let dev = PmDevice::paper_default();
    let input = PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "T",
        (0..1000u64).map(|i| WisconsinRecord::from_key(i % 37).with_payload(i)),
    );
    let pool = BufferPool::new(64 * 80);
    let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
    let groups = hash_aggregate(&input, |r| r.payload(), &ctx, "g").expect("fits");
    let agg_ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
    let sorted = write_limited::sort::external_merge_sort(&groups, &agg_ctx, "sorted-groups");
    assert_eq!(sorted.len(), 37);
    assert!(write_limited::sort::is_sorted_by_key(&sorted));
}
