//! Integration: every join algorithm × every persistence layer agrees
//! with the reference in-memory join, pair for pair.

use pmem_sim::{BufferPool, LayerKind, PCollection, PmDevice};
use wisconsin::{join_input, join_input_skewed, WisconsinRecord};
use write_limited::adaptive::adaptive_grace_join;
use write_limited::join::{JoinAlgorithm, JoinContext};

fn algorithms() -> Vec<JoinAlgorithm> {
    vec![
        JoinAlgorithm::NLJ,
        JoinAlgorithm::GJ,
        JoinAlgorithm::HJ,
        JoinAlgorithm::HybJ { x: 0.4, y: 0.6 },
        JoinAlgorithm::SegJ { frac: 0.4 },
        JoinAlgorithm::LaJ,
        JoinAlgorithm::SMJ { x: 0.3 },
    ]
}

/// Sorted multiset of (left key, right payload) pairs.
fn pair_set(
    out: &PCollection<wisconsin::Pair<WisconsinRecord, WisconsinRecord>>,
) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = out
        .to_vec_uncounted()
        .iter()
        .map(|p| (p.left.attrs[0], p.right.attrs[1]))
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn all_algorithms_all_layers_agree() {
    let reference: Vec<(u64, u64)> = {
        let mut v: Vec<(u64, u64)> = (0..1500u64).map(|i| (i % 300, i)).collect();
        v.sort_unstable();
        v
    };
    for layer in LayerKind::ALL {
        for algo in algorithms() {
            let dev = PmDevice::paper_default();
            let w = join_input(300, 5, 55);
            let left = PCollection::from_records_uncounted(&dev, layer, "T", w.left);
            let right = PCollection::from_records_uncounted(&dev, layer, "V", w.right);
            let pool = BufferPool::new(60 * 80);
            let ctx = JoinContext::new(&dev, layer, &pool);
            let out = algo.run(&left, &right, &ctx, "out").expect("applicable");
            assert_eq!(
                pair_set(&out),
                reference,
                "{} on {}",
                algo.label(),
                layer.label()
            );
        }
    }
}

#[test]
fn skewed_workloads_join_correctly() {
    for algo in algorithms() {
        let dev = PmDevice::paper_default();
        let w = join_input_skewed(200, 2000, 1.0, 12);
        // Reference from the generated inputs themselves.
        let mut reference: Vec<(u64, u64)> =
            w.right.iter().map(|r| (r.attrs[0], r.attrs[1])).collect();
        reference.sort_unstable();

        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::new(50 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = algo.run(&left, &right, &ctx, "out").expect("applicable");
        assert_eq!(pair_set(&out), reference, "{}", algo.label());
    }
}

#[test]
fn duplicate_build_keys_produce_cross_products() {
    // 3 copies of each key on the left × 2 on the right = 6 per key.
    for algo in algorithms() {
        let dev = PmDevice::paper_default();
        let left = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            (0..150u64).map(|i| WisconsinRecord::from_key(i % 50).with_payload(i)),
        );
        let right = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "V",
            (0..100u64).map(|i| WisconsinRecord::from_key(i % 50).with_payload(1000 + i)),
        );
        let pool = BufferPool::new(40 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = algo.run(&left, &right, &ctx, "out").expect("applicable");
        assert_eq!(out.len(), 300, "{}", algo.label());
    }
}

#[test]
fn empty_inputs_yield_empty_output() {
    for algo in algorithms() {
        let dev = PmDevice::paper_default();
        let empty: PCollection<WisconsinRecord> =
            PCollection::new(&dev, LayerKind::BlockedMemory, "E");
        let some = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "S",
            (0..20).map(WisconsinRecord::from_key),
        );
        let pool = BufferPool::new(100 * 80);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let out = algo.run(&empty, &some, &ctx, "o").expect("applicable");
        assert!(out.is_empty(), "{} (empty left)", algo.label());
        let out = algo.run(&some, &empty, &ctx, "o2").expect("applicable");
        assert!(out.is_empty(), "{} (empty right)", algo.label());
    }
}

#[test]
fn adaptive_join_agrees_with_fixed_algorithms() {
    let dev = PmDevice::paper_default();
    let w = join_input(300, 5, 55);
    let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
    let right = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
    let pool = BufferPool::new(60 * 80);
    let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
    let adaptive = adaptive_grace_join(&left, &right, &ctx, "a").expect("applicable");
    let grace = JoinAlgorithm::GJ
        .run(&left, &right, &ctx, "g")
        .expect("applicable");
    assert_eq!(pair_set(&adaptive), pair_set(&grace));
}

#[test]
fn write_profile_ordering_matches_the_paper() {
    // HJ rewrites the shrinking remainder every iteration; LaJ avoids
    // nearly all of it; NLJ writes only the output.
    let run = |algo: JoinAlgorithm| {
        let dev = PmDevice::paper_default();
        let w = join_input(2000, 10, 42);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::fraction_of(left.bytes(), 0.05);
        let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        algo.run(&left, &right, &ctx, "out").expect("applicable");
        dev.snapshot().since(&before)
    };
    let nlj = run(JoinAlgorithm::NLJ);
    let laj = run(JoinAlgorithm::LaJ);
    let gj = run(JoinAlgorithm::GJ);
    let hj = run(JoinAlgorithm::HJ);

    assert!(nlj.cl_writes < laj.cl_writes);
    assert!(laj.cl_writes < gj.cl_writes);
    assert!(gj.cl_writes < hj.cl_writes);
    // And the read side inverts for the lazy/read-only strategies.
    assert!(nlj.cl_reads > gj.cl_reads);
    assert!(laj.cl_reads > hj.cl_reads);
}
