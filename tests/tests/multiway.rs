//! Multi-way join integration tests: the DP join-order search end to
//! end — 3–5 relation chains plan, lower, and execute to exactly the
//! rows the n-way naive oracle produces, at any degree of parallelism.

use planner::{
    execute, execute_naive, Catalog, LogicalPlan, PhysicalPlan, PlannedQuery, Planner, Predicate,
    TableStats,
};
use pmem_sim::{BufferPool, DeviceConfig, LatencyProfile, LayerKind, PCollection, Pm, PmDevice};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use wisconsin::WisconsinRecord;

/// Builds a catalog of `n` joinable tables: table `i` has
/// `keys × fanout[i]` rows over the shared key domain `[0, keys)`.
fn chain_catalog(dev: &Pm, keys: u64, fanouts: &[u64], seed: u64) -> (Catalog, Vec<String>) {
    let mut cat = Catalog::new();
    let mut names = Vec::new();
    for (i, &fanout) in fanouts.iter().enumerate() {
        let name = format!("t{i}");
        let records: Vec<WisconsinRecord> = if fanout == 1 {
            wisconsin::sort_input(keys, wisconsin::KeyOrder::Random, seed + i as u64)
        } else {
            wisconsin::join_right_input(keys, fanout, seed + i as u64)
        };
        let col = Arc::new(PCollection::from_records_uncounted(
            dev,
            LayerKind::BlockedMemory,
            &name,
            records,
        ));
        cat.add_table(&name, col, keys);
        names.push(name);
    }
    (cat, names)
}

fn left_deep(names: &[String]) -> LogicalPlan {
    let mut plan = LogicalPlan::scan(&names[0]);
    for name in &names[1..] {
        plan = plan.join(LogicalPlan::scan(name));
    }
    plan
}

#[test]
fn three_way_chain_matches_the_naive_oracle() {
    let dev = PmDevice::paper_default();
    let (cat, names) = chain_catalog(&dev, 500, &[1, 3, 2], 7);
    let logical = left_deep(&names);
    let pool = BufferPool::new(400 * 80);
    let planner = Planner::for_device(&dev, &pool, LayerKind::BlockedMemory);
    let planned = planner.plan(&logical, &cat).expect("plans");

    // The root must be a chain join covering all three relations.
    let PhysicalPlan::Join {
        chain: Some(slots), ..
    } = &planned.plan
    else {
        panic!("expected a chain join root, got {}", planned.plan.label());
    };
    assert_eq!(slots.tables(), 3);

    let run = execute(&planned, &cat, &dev, LayerKind::BlockedMemory, &pool).expect("runs");
    let reference = execute_naive(&logical, &cat).expect("naive evaluates");
    assert_eq!(run.output.len(), 500 * 3 * 2, "fanout product");
    assert_eq!(run.output.canonical_wide(), reference.canonical_wide());
}

#[test]
fn filters_sorts_and_aggregates_compose_over_chains() {
    let dev = PmDevice::paper_default();
    let (cat, names) = chain_catalog(&dev, 400, &[1, 2, 1, 2], 3);
    let pool = BufferPool::new(500 * 80);
    let planner = Planner::for_device(&dev, &pool, LayerKind::BlockedMemory);

    // Pushed filter + post-join filter + sort above a 4-way chain.
    let filtered = LogicalPlan::scan(&names[0])
        .filter(Predicate::KeyBelow(250))
        .join(LogicalPlan::scan(&names[1]))
        .join(LogicalPlan::scan(&names[2]))
        .join(LogicalPlan::scan(&names[3]))
        .filter(Predicate::KeyModEq {
            modulus: 2,
            residue: 0,
        })
        .sort();
    let planned = planner.plan(&filtered, &cat).expect("plans");
    let run = execute(&planned, &cat, &dev, LayerKind::BlockedMemory, &pool).expect("runs");
    let reference = execute_naive(&filtered, &cat).expect("naive evaluates");
    assert_eq!(run.output.canonical_wide(), reference.canonical_wide());
    let keys = run.output.keys();
    assert!(keys.windows(2).all(|w| w[0] <= w[1]), "sorted output");

    // Aggregation over the chain groups by key and folds the last
    // relation's payload, exactly as the oracle does.
    let agged = left_deep(&names).aggregate().sort();
    let planned = planner.plan(&agged, &cat).expect("plans");
    let run = execute(&planned, &cat, &dev, LayerKind::BlockedMemory, &pool).expect("runs");
    let reference = execute_naive(&agged, &cat).expect("naive evaluates");
    assert_eq!(run.output.canonical_wide(), reference.canonical_wide());
    assert_eq!(run.output.len(), 400);
}

/// Property loop: randomized 3–5 relation chains across λ, DRAM budget,
/// fanouts, and filters — lowered rows must match the n-way oracle
/// bit-for-bit, and re-executing the same plan at DoP 4 must leave both
/// the rows and the simulated counters unchanged.
#[test]
fn random_chains_agree_with_naive_at_any_dop() {
    let mut rng = StdRng::seed_from_u64(0xC4A1);
    for case in 0..12 {
        let n = rng.gen_range(3usize..6);
        let keys = rng.gen_range(100u64..400);
        let fanouts: Vec<u64> = (0..n).map(|_| rng.gen_range(1u64..4)).collect();
        let lambda = [1.0, 4.0, 15.0][case % 3];
        let m_records = rng.gen_range(150usize..500);

        let dev = PmDevice::new(
            DeviceConfig::paper_default().with_latency(LatencyProfile::with_lambda(10.0, lambda)),
        );
        let (cat, names) = chain_catalog(&dev, keys, &fanouts, 11 + case as u64);
        let mut logical = LogicalPlan::scan(&names[0]);
        if case % 2 == 0 {
            logical = logical.filter(Predicate::KeyBelow(keys / 2));
        }
        for name in &names[1..] {
            logical = logical.join(LogicalPlan::scan(name));
        }

        let pool = BufferPool::new(m_records * 80);
        let planner = Planner::for_device(&dev, &pool, LayerKind::BlockedMemory);
        let planned = match planner.plan(&logical, &cat) {
            Ok(p) => p,
            Err(e) => panic!("case {case} (n={n}, keys={keys}, M={m_records}): {e}"),
        };
        let run = execute(&planned, &cat, &dev, LayerKind::BlockedMemory, &pool)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        let reference = execute_naive(&logical, &cat).expect("naive evaluates");
        assert_eq!(
            run.output.canonical_wide(),
            reference.canonical_wide(),
            "case {case} diverges from the oracle"
        );

        // Same plan at DoP 4 on a fresh device: identical rows and
        // identical simulated counters (parallelism buys time only).
        let dev4 = PmDevice::new(
            DeviceConfig::paper_default().with_latency(LatencyProfile::with_lambda(10.0, lambda)),
        );
        let (cat4, _) = chain_catalog(&dev4, keys, &fanouts, 11 + case as u64);
        let planned4 = PlannedQuery {
            threads: 4,
            ..planned.clone()
        };
        let run4 = execute(&planned4, &cat4, &dev4, LayerKind::BlockedMemory, &pool)
            .unwrap_or_else(|e| panic!("case {case} at DoP 4: {e}"));
        assert_eq!(
            run4.output.canonical_wide(),
            run.output.canonical_wide(),
            "case {case}: rows changed with DoP"
        );
        assert_eq!(
            run4.stats, run.stats,
            "case {case}: counters changed with DoP"
        );
    }
}

/// The DP prefers shrinking intermediate results: with one tiny filtered
/// relation and two large ones, the chosen order must join through the
/// tiny relation before the large-large edge is ever materialized.
#[test]
fn order_search_exploits_selective_relations() {
    let mut cat = Catalog::new();
    cat.add_stats("small", TableStats::wisconsin(500));
    cat.add_stats("big1", TableStats::wisconsin(40_000));
    cat.add_stats("big2", TableStats::wisconsin(40_000));
    // SQL order deliberately lists the two big relations first.
    let logical = LogicalPlan::scan("big1")
        .join(LogicalPlan::scan("big2"))
        .join(LogicalPlan::scan("small"));
    let planned = Planner::new(15.0, 2500.0, LayerKind::BlockedMemory)
        .plan(&logical, &cat)
        .expect("plans");
    let order = planned
        .choices
        .iter()
        .find(|c| c.node.starts_with("join order"))
        .expect("order summary");
    assert_ne!(
        order.chosen, "((big1 ⋈ big2) ⋈ small)",
        "the naive SQL order must lose to a small-first order"
    );
}
