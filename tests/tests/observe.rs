//! Observability invariants: the span profile must be an accounting
//! identity over the simulated counters, and it must never perturb them.
//!
//! Three properties hold for every algorithm at every degree of
//! parallelism:
//!
//! 1. **Hierarchy**: in every recorded tree, each node's children sum to
//!    at most the node's own counters ([`SpanNode::validate`]).
//! 2. **Coverage**: the root span's counters equal the device-level
//!    metrics delta of the run — nothing escapes the profile.
//! 3. **Transparency**: running with profiling on charges bit-identical
//!    simulated traffic to running with it off, at any DoP.

use pmem_sim::span::{begin_profile, end_profile};
use pmem_sim::{BufferPool, IoStats, LayerKind, PCollection, PmDevice, SpanNode};
use wisconsin::{join_input, sort_input, KeyOrder};
use write_limited::join::{JoinAlgorithm, JoinContext};
use write_limited::sort::{SortAlgorithm, SortContext};

/// Runs `algo` over a fresh device, profiled or not, and returns the
/// device delta plus the recorded tree (when profiled).
fn run_join_observed(
    algo: JoinAlgorithm,
    threads: usize,
    profiled: bool,
) -> (IoStats, Option<SpanNode>) {
    let dev = PmDevice::paper_default();
    let w = join_input(1200, 5, 13);
    let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
    let right = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
    let pool = BufferPool::new(120 * 80);
    let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
    let before = dev.snapshot();
    if profiled {
        begin_profile("join");
    }
    let out = algo.run(&left, &right, &ctx, "out").expect("applicable");
    let tree = if profiled { end_profile() } else { None };
    assert_eq!(out.len() as u64, w.expected_matches, "{}", algo.label());
    (dev.snapshot().since(&before), tree)
}

fn run_sort_observed(
    algo: SortAlgorithm,
    threads: usize,
    profiled: bool,
) -> (IoStats, Option<SpanNode>) {
    let dev = PmDevice::paper_default();
    let input = PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "S",
        sort_input(5000, KeyOrder::Random, 29),
    );
    let pool = BufferPool::new(90 * 80);
    let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool).with_threads(threads);
    let before = dev.snapshot();
    if profiled {
        begin_profile("sort");
    }
    let out = algo.run(&input, &ctx, "sorted").expect("valid");
    let tree = if profiled { end_profile() } else { None };
    assert_eq!(out.len(), 5000, "{}", algo.label());
    (dev.snapshot().since(&before), tree)
}

const JOINS: [JoinAlgorithm; 5] = [
    JoinAlgorithm::NLJ,
    JoinAlgorithm::GJ,
    JoinAlgorithm::HJ,
    JoinAlgorithm::LaJ,
    JoinAlgorithm::SegJ { frac: 0.5 },
];

const SORTS: [SortAlgorithm; 3] = [
    SortAlgorithm::ExMS,
    SortAlgorithm::SegS { x: 0.5 },
    SortAlgorithm::LaS,
];

#[test]
fn every_span_tree_sums_children_into_parents() {
    for threads in [1, 4] {
        for algo in JOINS {
            let (_, tree) = run_join_observed(algo, threads, true);
            let tree = tree.expect("profile recorded");
            tree.validate()
                .unwrap_or_else(|e| panic!("{} at DoP {threads}: {e}", algo.label()));
            assert!(
                tree.node_count() > 1,
                "{}: tree has structure",
                algo.label()
            );
        }
        for algo in SORTS {
            let (_, tree) = run_sort_observed(algo, threads, true);
            let tree = tree.expect("profile recorded");
            tree.validate()
                .unwrap_or_else(|e| panic!("{} at DoP {threads}: {e}", algo.label()));
        }
    }
}

#[test]
fn root_span_covers_the_whole_device_delta() {
    // Nothing the algorithm charges may escape the profile: the root
    // span's counters must equal the device snapshot delta exactly,
    // including work done on pool worker threads.
    for threads in [1, 4] {
        for algo in JOINS {
            let (delta, tree) = run_join_observed(algo, threads, true);
            let tree = tree.expect("profile recorded");
            assert_eq!(
                (tree.io.cl_reads, tree.io.cl_writes),
                (delta.cl_reads, delta.cl_writes),
                "{} at DoP {threads}: profile does not cover the run",
                algo.label()
            );
        }
        for algo in SORTS {
            let (delta, tree) = run_sort_observed(algo, threads, true);
            let tree = tree.expect("profile recorded");
            assert_eq!(
                (tree.io.cl_reads, tree.io.cl_writes),
                (delta.cl_reads, delta.cl_writes),
                "{} at DoP {threads}: profile does not cover the run",
                algo.label()
            );
        }
    }
}

#[test]
fn parallel_runs_attach_task_leaves_with_thread_ids() {
    let (_, tree) = run_sort_observed(SortAlgorithm::ExMS, 4, true);
    let tree = tree.expect("profile recorded");
    assert!(tree.task_count() > 0, "DoP-4 run fans out to task leaves");
    // Task leaves carry per-thread wall time; at least one ran off the
    // coordinator thread.
    let mut threads = Vec::new();
    collect_task_threads(&tree, &mut threads);
    assert!(!threads.is_empty());
    assert!(
        threads.iter().any(|&t| t != tree.thread),
        "some task ran on a worker thread"
    );
}

fn collect_task_threads(node: &SpanNode, out: &mut Vec<u64>) {
    if node.label.starts_with("task-") {
        out.push(node.thread);
    }
    for c in &node.children {
        collect_task_threads(c, out);
    }
}

#[test]
fn profiling_is_invisible_in_the_simulated_counters() {
    // The regression guard for "observation changes the experiment":
    // with and without an active profile, at DoP 1 and 4, every
    // algorithm charges bit-identical simulated traffic (counters AND
    // modeled software time).
    for threads in [1, 4] {
        for algo in JOINS {
            let (off, _) = run_join_observed(algo, threads, false);
            let (on, _) = run_join_observed(algo, threads, true);
            assert_eq!(
                off,
                on,
                "{} at DoP {threads}: profiling perturbed the counters",
                algo.label()
            );
        }
        for algo in SORTS {
            let (off, _) = run_sort_observed(algo, threads, false);
            let (on, _) = run_sort_observed(algo, threads, true);
            assert_eq!(
                off,
                on,
                "{} at DoP {threads}: profiling perturbed the counters",
                algo.label()
            );
        }
    }
}

#[test]
fn profiled_counters_are_dop_invariant() {
    // Observation at different degrees sees the same experiment: the
    // profiled device delta at DoP 4 equals the profiled delta at DoP 1.
    for algo in JOINS {
        let (d1, _) = run_join_observed(algo, 1, true);
        let (d4, _) = run_join_observed(algo, 4, true);
        assert_eq!(d1, d4, "{}: profiled traffic differs by DoP", algo.label());
    }
    for algo in SORTS {
        let (d1, _) = run_sort_observed(algo, 1, true);
        let (d4, _) = run_sort_observed(algo, 4, true);
        assert_eq!(d1, d4, "{}: profiled traffic differs by DoP", algo.label());
    }
}

#[test]
fn session_profile_reconciles_with_query_stats() {
    // End-to-end through the SQL layer: the span tree a session records
    // for a query accounts for exactly the traffic the stream reports.
    use wl_db::{Database, Response};

    let db = Database::builder().dram_records(200).batch_rows(64).build();
    db.create_wisconsin("t", 5000, 1, 3).expect("fresh");
    let mut s = db.session();
    let resp = s.execute("SELECT * FROM t ORDER BY key").expect("runs");
    let Response::Rows(mut stream) = resp else {
        panic!("expected rows");
    };
    let mut n = 0usize;
    while let Some(batch) = stream.next_batch().expect("clean stream") {
        n += batch.rows.len();
    }
    assert_eq!(n, 5000);
    let stats = stream.stats().expect("the stream completed");
    let profile = stream.profile().expect("profiling defaults to on").clone();
    profile.validate().expect("span sums hold");
    assert_eq!(profile.io.cl_reads, stats.io.cl_reads);
    assert_eq!(profile.io.cl_writes, stats.io.cl_writes);
    // The session keeps the last profile after the stream is dropped.
    drop(stream);
    let kept = s.last_profile().expect("session keeps the profile");
    assert_eq!(kept.io.cl_reads, profile.io.cl_reads);
}
