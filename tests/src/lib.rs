//! Cross-crate integration and property tests live in `tests/`; this
//! library target is intentionally empty.
