//! The §3.1 deferred-materialization runtime: recording a control-flow
//! graph, watching the rules fire, and running the adaptive join that is
//! driven by them.
//!
//! ```text
//! cargo run -p wl-examples --example runtime_api
//! ```

use pmem_sim::{BufferPool, DeviceConfig, LatencyProfile, LayerKind, PCollection, PmDevice};
use wisconsin::join_input;
use wl_runtime::{CStatus, Decision, OpCtx};
use write_limited::adaptive::adaptive_grace_join;
use write_limited::join::JoinContext;

fn main() {
    // ---- The paper's worked example, by hand ----
    // T of 300 buffers partitioned three ways; deferring T0 saves
    // |T|/3 writes at the cost of |T| reads.
    for lambda in [15.0, 2.0] {
        let mut ctx = OpCtx::new(lambda);
        ctx.declare("T", CStatus::Materialized, 300.0);
        for i in 0..3 {
            ctx.declare(&format!("T{i}"), CStatus::Deferred, 100.0);
        }
        ctx.partition("T", 3, &["T0", "T1", "T2"]);
        let v = ctx.assess("T0").expect("deferred");
        println!("λ = {lambda:>4}: T0 → {:?} (rule {:?})", v.decision, v.rule);
        if v.decision == Decision::Materialize {
            // Eager-partition cascades to the siblings.
            let v1 = ctx.assess("T1").expect("deferred");
            println!("          T1 → {:?} (rule {:?})", v1.decision, v1.rule);
        }
    }

    // ---- The same rules driving a real join ----
    println!("\nadaptive segmented Grace join (runtime decides materialization):");
    for lambda in [15.0, 2.0] {
        let dev = PmDevice::new(
            DeviceConfig::paper_default().with_latency(LatencyProfile::with_lambda(10.0, lambda)),
        );
        let w = join_input(5_000, 8, 9);
        let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
        let right =
            PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
        let pool = BufferPool::fraction_of(left.bytes(), 0.1);
        let jctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let out = adaptive_grace_join(&left, &right, &jctx, "out").expect("applicable");
        let stats = dev.snapshot().since(&before);
        assert_eq!(out.len() as u64, w.expected_matches);
        println!(
            "  λ = {lambda:>4}: {:.3}s simulated, {} writes, {} reads \
             (cheap writes → materialize early; expensive → rescan)",
            stats.time_secs(&dev.config().latency),
            stats.cl_writes,
            stats.cl_reads,
        );
    }
}
