//! Write-limited index leaves (the paper's §6 "data structures"
//! extension): the same B⁺-tree under sorted versus append-order leaf
//! layouts.
//!
//! ```text
//! cargo run -p wl-examples --example btree_leaves
//! ```

use pmem_sim::PmDevice;
use wisconsin::Permutation;
use wl_index::{BPlusTree, LeafPolicy};

fn main() {
    let n = 100_000u64;
    println!("B+-tree: {n} random-order inserts, 1024-byte pages\n");
    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>10} {:>8}",
        "leaves", "insert (s)", "insert writes", "lookup (s)", "pages", "height"
    );

    for policy in [LeafPolicy::Sorted, LeafPolicy::Append] {
        let dev = PmDevice::paper_default();
        let mut tree = BPlusTree::new(&dev, 1024, policy);
        let perm = Permutation::new(n, 11);

        let before = dev.snapshot();
        for i in 0..n {
            tree.insert(perm.apply(i), i);
        }
        let ins = dev.snapshot().since(&before);

        let before = dev.snapshot();
        for key in (0..n).step_by(13) {
            assert!(tree.get(key).is_some());
        }
        let get = dev.snapshot().since(&before);

        println!(
            "{:<10} {:>12.4} {:>14} {:>12.4} {:>10} {:>8}",
            format!("{policy:?}"),
            ins.time_secs(&dev.config().latency),
            ins.cl_writes,
            get.time_secs(&dev.config().latency),
            tree.pages(),
            tree.height()
        );
    }

    println!(
        "\nAppend-order leaves dirty one or two cachelines per insertion \
         instead of shifting\nthe sorted suffix — the write-limited layout \
         Chen et al. propose for PCM B+-trees\n(the paper's reference [2]); \
         lookups pay a DRAM-side scan, which costs no I/O."
    );
}
