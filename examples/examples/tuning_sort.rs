//! The write-intensity knob: sweep segment sort's `x` and compare the
//! measured writes/time against the cost model's optimal `x` (Eq. 4).
//!
//! ```text
//! cargo run -p wl-examples --example tuning_sort
//! ```

use pmem_sim::{BufferPool, LayerKind, PCollection, PmDevice};
use wisconsin::{sort_input, KeyOrder};
use write_limited::cost::sort_costs::{optimal_segment_x, segment_cost};
use write_limited::sort::{segment_sort, SortContext};

fn main() {
    let n = 60_000u64;
    let mem_fraction = 0.05;

    println!(
        "segment sort on {n} records, M = {:.0}% of input",
        mem_fraction * 100.0
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "x", "time (s)", "writes", "reads"
    );

    for x in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            sort_input(n, KeyOrder::Random, 11),
        );
        let pool = BufferPool::fraction_of(input.bytes(), mem_fraction);
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let out = segment_sort(&input, x, &ctx, "sorted").expect("valid x");
        let stats = dev.snapshot().since(&before);
        assert_eq!(out.len() as u64, n);
        println!(
            "{x:>6.1} {:>12.3} {:>12} {:>12}",
            stats.time_secs(&dev.config().latency),
            stats.cl_writes,
            stats.cl_reads,
        );
    }

    // What the cost model recommends (Eq. 4).
    let t = (n * 80).div_ceil(64) as f64;
    let m = t * mem_fraction;
    let lambda = pmem_sim::LatencyProfile::PCM.lambda();
    match optimal_segment_x(t, m, lambda) {
        Some(x) => println!(
            "\nEq. 4 optimal x = {x:.2} (estimated cost {:.0} read units)",
            segment_cost(t, m, lambda, x)
        ),
        None => println!(
            "\nEq. 4 has no interior optimum here (λ = {lambda} too high for |T|/M = {:.0}) — \
             pure selection sort (x = 0) minimizes writes",
            t / m
        ),
    }
}
