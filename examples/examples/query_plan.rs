//! Cost-based planning of a composed query over the write-limited
//! operators:
//!
//! ```sql
//! SELECT l.key, COUNT(*), SUM(r.payload)
//! FROM   T l JOIN V r ON l.key = r.key
//! WHERE  l.key < 5000        -- pushed below the join
//! GROUP  BY l.key
//! ```
//!
//! The planner enumerates every applicable sort/join algorithm and knob
//! for the plan's nodes, costs them with the paper's Eqs. 1–11 under
//! the device's λ, picks the cheapest physical plan, lowers it onto the
//! Volcano operators, runs it against the simulator, and reports
//! predicted vs measured cacheline traffic. Running the same query at a
//! symmetric write latency changes the chosen plan — the paper's core
//! claim, at plan granularity.
//!
//! ```text
//! cargo run -p wl-examples --example query_plan
//! ```

use planner::{execute, Catalog, LogicalPlan, Planner, Predicate};
use pmem_sim::{BufferPool, DeviceConfig, LatencyProfile, LayerKind, PCollection, PmDevice};
use wisconsin::join_input;

fn plan_and_run(lambda: f64) -> String {
    let latency = LatencyProfile::with_lambda(10.0, lambda);
    let dev = PmDevice::new(DeviceConfig::paper_default().with_latency(latency));
    let w = join_input(10_000, 10, 5);
    let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
    let right = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
    let mut catalog = Catalog::new();
    catalog.add_table("T", &left, 10_000);
    catalog.add_table("V", &right, 10_000);

    let query = LogicalPlan::scan("T")
        .filter(Predicate::KeyBelow(5_000))
        .join(LogicalPlan::scan("V"))
        .aggregate();

    // M small enough that the build side takes several passes — the
    // regime where the write/read ratio decides between partitioning
    // (write-heavy, few passes) and iterating (read-heavy, no writes).
    let pool = BufferPool::new(1_000 * 80);
    let planner = Planner::for_device(&dev, &pool, LayerKind::BlockedMemory);
    let planned = planner.plan(&query, &catalog).expect("query plans");

    println!("=== λ = {lambda} ===");
    print!("{}", planner::render_choices(&planned));
    print!("{}", planner::render_plan(&planned));

    let run = execute(&planned, &catalog, &dev, LayerKind::BlockedMemory, &pool)
        .expect("planner only proposes executable plans");
    assert_eq!(run.output.len(), 5_000, "one group per surviving key");
    print!("{}", planner::render_concordance(&planned, &run, &latency));
    println!();

    // The join choice is what the λ sweep steers; return its label.
    planned
        .choices
        .iter()
        .find(|c| c.node.starts_with("join"))
        .map(|c| c.chosen.clone())
        .unwrap_or_default()
}

fn main() {
    // The paper's PCM profile (λ = 15) vs a symmetric medium (λ = 1):
    // same query, same data, different winning plan.
    let at_pcm = plan_and_run(LatencyProfile::PCM.lambda());
    let at_symmetric = plan_and_run(1.0);
    println!("chosen join at λ=15: {at_pcm}");
    println!("chosen join at λ=1:  {at_symmetric}");
    assert_ne!(
        at_pcm, at_symmetric,
        "the write/read ratio must steer the plan choice"
    );
    println!("\nwrite latency changed the plan — the §4.2.3 knob optimizer, lifted to plans");
}
