//! A composed Volcano-style query plan over the write-limited operators:
//!
//! ```sql
//! SELECT l.key, COUNT(*), SUM(r.payload)
//! FROM   T l JOIN V r ON l.key = r.key
//! WHERE  l.key < 5000        -- pushed into the scan
//! GROUP  BY l.key
//! ```
//!
//! ```text
//! cargo run -p wl-examples --example query_plan
//! ```

use pmem_sim::{BufferPool, LayerKind, PCollection, PmDevice, Storable};
use wisconsin::{join_input, Pair, Record, WisconsinRecord};
use write_limited::agg::GroupAgg;
use write_limited::exec::{collect, AggOp, FilterOp, JoinOp, ScanOp, SortOp};
use write_limited::join::JoinAlgorithm;
use write_limited::sort::SortAlgorithm;

fn main() {
    let dev = PmDevice::paper_default();
    let w = join_input(10_000, 10, 5);
    let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
    let right = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
    let pool = BufferPool::new(
        2000 * Pair::<WisconsinRecord, WisconsinRecord>::SIZE, // M for the whole plan
    );

    // Plan: join → filter (on the join key) → aggregate (write-limited,
    // x = 0: the aggregation sorts its input by rescan streams and
    // writes only group rows).
    let join = JoinOp::new(
        &left,
        &right,
        JoinAlgorithm::SegJ { frac: 0.5 },
        &dev,
        LayerKind::BlockedMemory,
        &pool,
    );
    let filtered = FilterOp::new(join, |p: &Pair<WisconsinRecord, WisconsinRecord>| {
        p.left.key() < 5_000
    });
    let mut plan = AggOp::new(
        filtered,
        |p| p.right.payload(),
        0.0,
        &dev,
        LayerKind::BlockedMemory,
        &pool,
    );

    let before = dev.snapshot();
    let groups = collect(&mut plan).expect("plan is applicable");
    let stats = dev.snapshot().since(&before);

    assert_eq!(groups.len(), 5_000);
    assert!(groups.iter().all(|g| g.count == 10));
    println!(
        "plan produced {} groups in {:.3}s simulated ({} cacheline writes, {} reads)",
        groups.len(),
        stats.time_secs(&dev.config().latency),
        stats.cl_writes,
        stats.cl_reads,
    );

    // And the group rows are themselves records: sort them by, say,
    // their key descending? They already come out key-ascending from
    // the sort-based aggregate — demonstrate by re-sorting through the
    // operator API and verifying it is a no-op order-wise.
    let staged = PCollection::<GroupAgg>::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "groups",
        groups.iter().copied(),
    );
    let mut sort = SortOp::new(
        ScanOp::new(&staged),
        SortAlgorithm::ExMS,
        &dev,
        LayerKind::BlockedMemory,
        &pool,
    );
    let sorted = collect(&mut sort).expect("valid");
    assert!(sorted.windows(2).all(|w| w[0].key <= w[1].key));
    println!("group rows compose with further operators (re-sorted {} rows)", sorted.len());
}
