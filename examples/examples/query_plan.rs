//! Cost-based planning of a composed query, driven entirely through the
//! `wl-db` facade:
//!
//! ```sql
//! SELECT key, count, sum
//! FROM   t JOIN v ON t.key = v.key
//! WHERE  t.key < 5000        -- pushed below the join
//! GROUP  BY key
//! ```
//!
//! The session parses the SQL, the planner enumerates every applicable
//! sort/join algorithm and knob, costs them with the paper's Eqs. 1–11
//! under the device's λ, lowers the winner onto the Volcano operators,
//! and the result streams back with predicted vs measured cacheline
//! traffic. Running the same query on a device with symmetric write
//! latency changes the chosen plan — the paper's core claim, at plan
//! granularity.
//!
//! ```text
//! cargo run -p wl-examples --example query_plan
//! ```

use wl_db::Database;

fn plan_and_run(lambda: f64) -> String {
    let db = Database::builder()
        .lambda(lambda)
        // M small enough that the build side takes several passes — the
        // regime where the write/read ratio decides between partitioning
        // (write-heavy, few passes) and iterating (read-heavy, no writes).
        .dram_records(1_000)
        .build();
    let mut session = db.session();
    session
        .execute("CREATE TABLE t AS WISCONSIN(10_000, 1, 5)")
        .expect("t loads");
    session
        .execute("CREATE TABLE v AS WISCONSIN(10_000, 10, 5)")
        .expect("v loads");

    let mut stream = session
        .query(
            "SELECT key, count, sum FROM t JOIN v ON t.key = v.key \
             WHERE t.key < 5_000 GROUP BY key",
        )
        .expect("query plans");
    let rows = stream.drain().expect("query runs");
    assert_eq!(rows, 5_000, "one group per surviving key");

    println!("=== λ = {lambda} ===");
    print!("{}", stream.explain());
    println!();

    // The join choice is what the λ sweep steers; return its label.
    stream
        .planned()
        .choices
        .iter()
        .find(|c| c.node.starts_with("join"))
        .map(|c| c.chosen.clone())
        .unwrap_or_default()
}

fn main() {
    // The paper's PCM profile (λ = 15) vs a symmetric medium (λ = 1):
    // same query, same data, different winning plan.
    let at_pcm = plan_and_run(15.0);
    let at_symmetric = plan_and_run(1.0);
    println!("chosen join at λ=15: {at_pcm}");
    println!("chosen join at λ=1:  {at_symmetric}");
    assert_ne!(
        at_pcm, at_symmetric,
        "the write/read ratio must steer the plan choice"
    );
    println!("\nwrite latency changed the plan — the §4.2.3 knob optimizer, lifted to plans");
}
