//! The four §3.2 persistence layers: identical workload, different
//! overheads (blocked memory < PMFS < RAM disk < dynamic array).
//!
//! ```text
//! cargo run -p wl-examples --example persistence_layers
//! ```

use pmem_sim::{BufferPool, LayerKind, PCollection, PmDevice};
use wisconsin::{sort_input, KeyOrder};
use write_limited::sort::{external_merge_sort, SortContext};

fn main() {
    let n = 40_000u64;
    println!("external mergesort on {n} records, M = 5%, per persistence layer\n");
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>14}",
        "layer", "time (s)", "writes", "reads", "overhead (ns)"
    );

    let mut baseline = None;
    for layer in LayerKind::ALL {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            layer,
            "T",
            sort_input(n, KeyOrder::Random, 5),
        );
        let pool = BufferPool::fraction_of(input.bytes(), 0.05);
        let ctx = SortContext::new(&dev, layer, &pool);
        let before = dev.snapshot();
        let out = external_merge_sort(&input, &ctx, "sorted");
        let stats = dev.snapshot().since(&before);
        assert_eq!(out.len() as u64, n);
        let secs = stats.time_secs(&dev.config().latency);
        let base = *baseline.get_or_insert(secs);
        println!(
            "{:<16} {:>10.4} {:>12} {:>12} {:>14.0}  ({:+.0}% vs blocked)",
            layer.label(),
            secs,
            stats.cl_writes,
            stats.cl_reads,
            stats.software_ns,
            (secs / base - 1.0) * 100.0,
        );
    }

    println!(
        "\nThe dynamic array pays reads+writes to copy itself at every \
         capacity doubling;\nthe RAM disk rounds I/O to 512-byte records and \
         pays per-call software cost;\nPMFS adds only a small per-block call \
         cost — the paper's §4.3 ordering."
    );
}
