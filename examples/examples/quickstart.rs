//! Quickstart: the `wl-db` facade end to end — create Wisconsin tables,
//! stream a sorted scan, run a join, and read the measured cacheline
//! traffic of each query on a simulated persistent-memory device.
//!
//! ```text
//! cargo run -p wl-examples --example quickstart
//! ```

use wl_db::Database;

fn main() {
    // A database on the paper's PCM profile: 10 ns reads, 150 ns writes
    // (λ = 15), with M = 2500 records of DRAM per session.
    let db = Database::builder().dram_records(2_500).build();
    println!(
        "medium: λ = {} (write/read cost ratio)",
        db.device().lambda()
    );

    let mut session = db.session();
    session
        .execute("CREATE TABLE t AS WISCONSIN(50_000)")
        .expect("t loads");
    session
        .execute("CREATE TABLE v AS WISCONSIN(10_000, 10)")
        .expect("v loads");

    // ---- Sort, streamed ----
    let mut sorted = session
        .query("SELECT * FROM t ORDER BY key")
        .expect("query plans");
    let mut rows = 0u64;
    while let Some(batch) = sorted.next_batch().expect("streams") {
        rows += batch.rows.len() as u64; // batches arrive incrementally
    }
    assert_eq!(rows, 50_000);
    let stats = sorted.stats().expect("drained");
    println!(
        "sort: {} rows in {} batches, {:.3}s simulated, {} cacheline writes, {} reads",
        stats.rows, stats.batches, stats.secs, stats.io.cl_writes, stats.io.cl_reads,
    );

    // ---- Join, streamed ----
    let mut joined = session
        .query("SELECT * FROM v JOIN t ON v.key = t.key WHERE t.key < 10_000")
        .expect("query plans");
    let matches = joined.drain().expect("streams");
    assert_eq!(matches, 100_000, "10 right records per surviving key");
    let stats = joined.stats().expect("drained");
    println!(
        "join: {} matches, {:.3}s simulated, {} writes, {} reads",
        stats.rows, stats.secs, stats.io.cl_writes, stats.io.cl_reads,
    );

    // The planner picked the algorithms; EXPLAIN shows its working.
    println!("\n{}", joined.explain());
}
