//! Quickstart: sort and join on a simulated persistent-memory device,
//! reporting response time and cacheline traffic.
//!
//! ```text
//! cargo run -p wl-examples --example quickstart
//! ```

use pmem_sim::{BufferPool, LayerKind, PCollection, PmDevice};
use wisconsin::{join_input, sort_input, KeyOrder};
use write_limited::join::{lazy_hash_join, JoinContext};
use write_limited::sort::{segment_sort, SortContext};

fn main() {
    // A device with the paper's PCM profile: 10 ns reads, 150 ns writes.
    let dev = PmDevice::paper_default();
    println!("medium: λ = {} (write/read cost ratio)", dev.lambda());

    // ---- Sort ----
    let input = PCollection::from_records_uncounted(
        &dev,
        LayerKind::BlockedMemory,
        "T",
        sort_input(50_000, KeyOrder::Random, 42),
    );
    // M = 5% of the input.
    let pool = BufferPool::fraction_of(input.bytes(), 0.05);
    let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);

    let before = dev.snapshot();
    let sorted = segment_sort(&input, 0.5, &ctx, "sorted").expect("x in [0,1]");
    let stats = dev.snapshot().since(&before);
    assert_eq!(sorted.len(), 50_000);
    println!(
        "segment sort (x = 50%): {:.3}s simulated, {} cacheline writes, {} reads",
        stats.time_secs(&dev.config().latency),
        stats.cl_writes,
        stats.cl_reads,
    );

    // ---- Join ----
    let w = join_input(10_000, 10, 7);
    let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "L", w.left);
    let right = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "R", w.right);
    let pool = BufferPool::fraction_of(left.bytes(), 0.05);
    let jctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);

    let before = dev.snapshot();
    let joined = lazy_hash_join(&left, &right, &jctx, "joined");
    let stats = dev.snapshot().since(&before);
    assert_eq!(joined.len() as u64, w.expected_matches);
    println!(
        "lazy hash join: {} matches, {:.3}s simulated, {} writes, {} reads",
        joined.len(),
        stats.time_secs(&dev.config().latency),
        stats.cl_writes,
        stats.cl_reads,
    );
}
