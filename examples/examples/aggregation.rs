//! Write-limited aggregation (the paper's §6 extension): the aggregation
//! output is tiny, so a pipeline that never materializes its sorted or
//! partitioned intermediates writes almost nothing.
//!
//! ```text
//! cargo run -p wl-examples --example aggregation
//! ```

use pmem_sim::{BufferPool, LayerKind, PCollection, PmDevice};
use wisconsin::{sort_input, KeyOrder};
use write_limited::agg::{hash_aggregate, segmented_hash_aggregate, sort_based_aggregate};
use write_limited::sort::SortContext;

fn main() {
    let n = 50_000u64;
    let groups = 1_000u64;
    println!("aggregating {n} records into {groups} groups (sum/min/max/avg per key)\n");
    println!(
        "{:<26} {:>10} {:>10} {:>10}",
        "strategy", "time (s)", "writes", "reads"
    );

    let stage = || {
        let dev = PmDevice::paper_default();
        let input = PCollection::from_records_uncounted(
            &dev,
            LayerKind::BlockedMemory,
            "T",
            sort_input(n, KeyOrder::FewDistinct { distinct: groups }, 7),
        );
        let pool = BufferPool::fraction_of(input.bytes(), 0.05);
        (dev, input, pool)
    };

    for x in [0.0, 0.5, 1.0] {
        let (dev, input, pool) = stage();
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let out = sort_based_aggregate(&input, x, |r| r.payload(), &ctx, "agg").expect("valid x");
        let s = dev.snapshot().since(&before);
        assert_eq!(out.len() as u64, groups);
        println!(
            "{:<26} {:>10.4} {:>10} {:>10}",
            format!("sort-based, x = {:.0}%", x * 100.0),
            s.time_secs(&dev.config().latency),
            s.cl_writes,
            s.cl_reads
        );
    }

    {
        let (dev, input, pool) = stage();
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        match hash_aggregate(&input, |r| r.payload(), &ctx, "agg") {
            Ok(out) => {
                let s = dev.snapshot().since(&before);
                assert_eq!(out.len() as u64, groups);
                println!(
                    "{:<26} {:>10.4} {:>10} {:>10}",
                    "hash (one pass)",
                    s.time_secs(&dev.config().latency),
                    s.cl_writes,
                    s.cl_reads
                );
            }
            Err(e) => println!("hash (one pass): inapplicable — {e}"),
        }
    }

    for materialized in [0usize, 4] {
        let (dev, input, pool) = stage();
        let ctx = SortContext::new(&dev, LayerKind::BlockedMemory, &pool);
        let before = dev.snapshot();
        let out = segmented_hash_aggregate(&input, 4, materialized, |r| r.payload(), &ctx, "agg")
            .expect("valid");
        let s = dev.snapshot().since(&before);
        assert_eq!(out.len() as u64, groups);
        println!(
            "{:<26} {:>10.4} {:>10} {:>10}",
            format!("segmented hash, {materialized}/4 mat."),
            s.time_secs(&dev.config().latency),
            s.cl_writes,
            s.cl_reads
        );
    }

    println!(
        "\nsort-based at x = 0% and segmented-hash at 0/4 write nothing but \
         the {groups}-row output:\nthe intermediate state is re-derived by \
         rescanning, the same trade the paper's sorts and joins make."
    );
}
