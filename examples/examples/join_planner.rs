//! Cost-model-driven join planning: the Fig. 2 heatmap intuition and the
//! §4.2.3 informed choice, then a run of the chosen plan.
//!
//! ```text
//! cargo run -p wl-examples --example join_planner
//! ```

use pmem_sim::{BufferPool, LatencyProfile, LayerKind, PCollection, PmDevice};
use wisconsin::join_input;
use write_limited::cost::{choose_join, estimate_join, join_costs};
use write_limited::join::{JoinAlgorithm, JoinContext};

fn main() {
    let t_records = 10_000u64;
    let fanout = 10u64;
    let mem_fraction = 0.05;

    let t = (t_records * 80).div_ceil(64) as f64;
    let v = t * fanout as f64;
    let m = t * mem_fraction;
    let lambda = LatencyProfile::PCM.lambda();

    // Estimated costs for the candidate plans.
    println!("estimated costs (read units), |T|={t:.0}, |V|={v:.0}, M={m:.0}, λ={lambda}:");
    for algo in [
        JoinAlgorithm::NLJ,
        JoinAlgorithm::GJ,
        JoinAlgorithm::HJ,
        JoinAlgorithm::HybJ { x: 0.5, y: 0.5 },
        JoinAlgorithm::SegJ { frac: 0.5 },
        JoinAlgorithm::LaJ,
    ] {
        println!(
            "  {:<18} {:>14.0}",
            algo.label(),
            estimate_join(&algo, t, v, m, lambda)
        );
    }

    // Where Eq. 6's surface bottoms out.
    let (bx, by) = join_costs::optimal_hybrid_xy(t, v, m, lambda, 20);
    println!("\nEq. 6 grid minimum: x = {bx:.2}, y = {by:.2}");
    let (sx, sy) = join_costs::hybrid_saddle(t, v, m, lambda);
    println!("Eqs. 7–8 saddle point: x_h = {sx:.3}, y_h = {sy:.3} (a saddle, not a minimum)");

    // The informed choice, executed.
    let chosen = choose_join(t, v, m, lambda);
    println!("\nplanner chose: {}", chosen.label());

    let dev = PmDevice::paper_default();
    let w = join_input(t_records, fanout, 3);
    let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
    let right = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
    let pool = BufferPool::fraction_of(left.bytes(), mem_fraction);
    let ctx = JoinContext::new(&dev, LayerKind::BlockedMemory, &pool);
    let before = dev.snapshot();
    let out = chosen
        .run(&left, &right, &ctx, "joined")
        .expect("planner only proposes applicable plans");
    let stats = dev.snapshot().since(&before);
    assert_eq!(out.len() as u64, w.expected_matches);
    println!(
        "measured: {} matches in {:.3}s simulated ({} writes, {} reads)",
        out.len(),
        stats.time_secs(&dev.config().latency),
        stats.cl_writes,
        stats.cl_reads,
    );
}
