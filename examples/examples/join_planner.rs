//! Cost-model-driven join planning, end to end: the Fig. 2 heatmap
//! intuition (Eq. 6 surface), the §4.2.3 informed choice — now made by
//! the plan enumerator over the whole candidate field — and a measured
//! run of the winning plan.
//!
//! ```text
//! cargo run -p wl-examples --example join_planner
//! ```

use planner::{execute, Catalog, LogicalPlan, Planner};
use pmem_sim::{BufferPool, LatencyProfile, LayerKind, PCollection, PmDevice};
use wisconsin::join_input;
use write_limited::cost::join_costs;

fn main() {
    let t_records = 10_000u64;
    let fanout = 10u64;
    let mem_fraction = 0.05;

    let t = (t_records * 80).div_ceil(64) as f64;
    let v = t * fanout as f64;
    let m = t * mem_fraction;
    let lambda = LatencyProfile::PCM.lambda();

    // Where Eq. 6's surface bottoms out (the Fig. 2 intuition).
    let (bx, by) = join_costs::optimal_hybrid_xy(t, v, m, lambda, 20);
    println!("Eq. 6 grid minimum: x = {bx:.2}, y = {by:.2}");
    let (sx, sy) = join_costs::hybrid_saddle(t, v, m, lambda);
    println!("Eqs. 7–8 saddle point: x_h = {sx:.3}, y_h = {sy:.3} (a saddle, not a minimum)\n");

    // The informed choice, now at plan level: enumerate every algorithm
    // in both build orders, rank by the cost models, run the winner.
    let dev = PmDevice::paper_default();
    let w = join_input(t_records, fanout, 3);
    let left = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "T", w.left);
    let right = PCollection::from_records_uncounted(&dev, LayerKind::BlockedMemory, "V", w.right);
    let mut catalog = Catalog::new();
    catalog.add_table("T", &left, t_records);
    catalog.add_table("V", &right, t_records);

    let pool = BufferPool::fraction_of(left.bytes(), mem_fraction);
    let planner = Planner::for_device(&dev, &pool, LayerKind::BlockedMemory);
    let query = LogicalPlan::scan("T").join(LogicalPlan::scan("V"));
    let planned = planner.plan(&query, &catalog).expect("query plans");

    print!("{}", planner::render_choices(&planned));
    print!("{}", planner::render_plan(&planned));

    let run = execute(&planned, &catalog, &dev, LayerKind::BlockedMemory, &pool)
        .expect("planner only proposes applicable plans");
    assert_eq!(run.output.len() as u64, w.expected_matches);
    println!(
        "\nmeasured: {} matches in {:.3}s simulated",
        run.output.len(),
        run.secs
    );
    print!(
        "{}",
        planner::render_concordance(&planned, &run, &dev.config().latency)
    );
}
