//! Cost-model-driven join planning, end to end: the Fig. 2 heatmap
//! intuition (Eq. 6 surface), the §4.2.3 informed choice — now made by
//! the plan enumerator over the whole candidate field, reached through
//! the `wl-db` facade — and a measured run of the winning plan.
//!
//! ```text
//! cargo run -p wl-examples --example join_planner
//! ```

use pmem_sim::LatencyProfile;
use wl_db::Database;
use write_limited::cost::join_costs;

fn main() {
    let t_records = 10_000u64;
    let fanout = 10u64;
    let mem_records = (t_records as f64 * 0.05) as usize; // M = 5% of |T|

    let t = (t_records * 80).div_ceil(64) as f64;
    let v = t * fanout as f64;
    let m = t * 0.05;
    let lambda = LatencyProfile::PCM.lambda();

    // Where Eq. 6's surface bottoms out (the Fig. 2 intuition).
    let (bx, by) = join_costs::optimal_hybrid_xy(t, v, m, lambda, 20);
    println!("Eq. 6 grid minimum: x = {bx:.2}, y = {by:.2}");
    let (sx, sy) = join_costs::hybrid_saddle(t, v, m, lambda);
    println!("Eqs. 7–8 saddle point: x_h = {sx:.3}, y_h = {sy:.3} (a saddle, not a minimum)\n");

    // The informed choice, now at plan level behind the facade: the
    // session enumerates every algorithm in both build orders, ranks by
    // the cost models, runs the winner, and streams the matches back.
    let db = Database::builder().dram_records(mem_records).build();
    let mut session = db.session();
    session
        .execute("CREATE TABLE t AS WISCONSIN(10_000, 1, 3)")
        .expect("t loads");
    session
        .execute("CREATE TABLE v AS WISCONSIN(10_000, 10, 3)")
        .expect("v loads");

    let mut stream = session
        .query("SELECT * FROM t JOIN v ON t.key = v.key")
        .expect("query plans");
    let matches = stream.drain().expect("query runs");
    assert_eq!(matches, t_records * fanout);

    let stats = stream.stats().expect("drained");
    println!(
        "measured: {} matches in {:.3}s simulated\n",
        stats.rows, stats.secs
    );
    print!("{}", stream.explain());
}
