//! Runnable examples for the write-limited library; see the `examples/`
//! directory (`cargo run -p wl-examples --example quickstart`).
